package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/bsfs"
	"blobseer/internal/flight"
	"blobseer/internal/obs"
)

// Incident scenario knobs: a journaled 3-shard deployment under an
// armed SLO watchdog loses a VM shard mid-workload while a Zipf read
// hotspot runs, and the flight recorder must reconstruct the incident
// after the fact.
const (
	incidentShards   = 3
	incidentWriters  = 6
	incidentReaders  = 4
	incidentHotPages = 16                    // pages pre-appended to the hotspot BLOB
	incidentHotReads = 40                    // Zipf reads per reader per phase
	incidentZipfS    = 1.2                   // same skew the hotspot scenario uses
	incidentOpsPre   = 4                     // appends per writer before the kill
	incidentOpsPost  = 6                     // appends per writer once the kill lands
	incidentInterval = 50 * time.Millisecond // monitor collection cadence
	incidentPingTmo  = 150 * time.Millisecond
	incidentOutage   = 300 * time.Millisecond
)

// IncidentResult is the machine-checkable outcome of the incident
// drill.
type IncidentResult struct {
	Shards      int `json:"shards"`
	Writers     int `json:"writers"`
	KilledShard int `json:"killed_shard"`

	// OutageMS is how long the victim shard was down.
	OutageMS float64 `json:"outage_ms"`

	// FireDelayMS is kill -> health alert firing; FireCollections is
	// the same delay in monitor collection passes (the acceptance bar:
	// within one interval, so a small number of passes).
	FireDelayMS     float64 `json:"fire_delay_ms"`
	FireCollections uint64  `json:"fire_collections"`
	// ClearEvals is how many evaluation passes after the restart the
	// alert took to clear (hysteresis: >= ClearAfter).
	ClearEvals uint64 `json:"clear_evals"`

	// Replay: what a fresh Recorder opened on the abandoned flight log
	// (the "post-restart" view) reconstructed.
	ReplayEvents          int  `json:"replay_events"`
	ReplayTraces          int  `json:"replay_traces"`
	ReplaySlowTraceSpans  int  `json:"replay_slow_trace_spans"` // span count of the largest slow trace
	ReplaySnapshots       int  `json:"replay_snapshots"`
	SnapshotsBeforeKill   int  `json:"snapshots_before_kill"`
	SnapshotsAfterRestart int  `json:"snapshots_after_restart"`
	AlertFires            int  `json:"alert_fires"`
	AlertClears           int  `json:"alert_clears"`
	HealthTransitions     int  `json:"health_transitions"`
	TimelineRendered      bool `json:"timeline_rendered"`
}

// Incident runs the flight-recorder drill: journaled BSFS deployment,
// armed watchdog (FireAfter=1, ClearAfter=3), traced append workload
// plus a Zipf read hotspot, VM-shard kill and journal-replay restart —
// then replays the abandoned flight log the way a post-crash restart
// would and verifies the timeline brackets the outage.
func Incident(cfg Config) (*IncidentResult, error) {
	cfg = cfg.withDefaults()

	dir, err := os.MkdirTemp("", "blobseer-incident-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	flightPath := filepath.Join(dir, "flight.log")

	envCfg := cfg
	envCfg.VMShards = incidentShards
	envCfg.JournalDir = filepath.Join(dir, "journal")
	if err := os.MkdirAll(envCfg.JournalDir, 0o755); err != nil {
		return nil, err
	}
	env, err := newBSFSEnv(envCfg)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	d := env.deploy
	d.HealthPingTimeout = incidentPingTmo

	if err := d.EnableFlight(flightPath, bsfs.FlightConfig{
		Sampler: flight.SamplerOptions{SlowFloor: 2 * time.Millisecond},
		Watchdog: flight.WatchdogOptions{
			FireAfter:     1,
			ClearAfter:    3,
			SnapshotEvery: 1,
			HealthTimeout: time.Second,
		},
		Rules: flight.StandardRulesOptions{Health: true},
	}); err != nil {
		return nil, err
	}
	d.SetMonitorInterval(incidentInterval)

	// Workload BLOBs: one per writer, plus the hotspot BLOB that the
	// Zipf readers hammer.
	clients := make([]*blob.Client, incidentWriters)
	blobs := make([]*blob.Blob, incidentWriters)
	for w := range clients {
		hosts := env.cluster.ProviderHosts()
		clients[w] = env.cluster.Client(hosts[w%len(hosts)])
		bl, err := clients[w].Create(ctx, cfg.PageSize)
		if err != nil {
			return nil, err
		}
		blobs[w] = bl
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// The victim is the shard owning writer 0's BLOB: at least one
	// writer provably routes through the outage. The hotspot BLOB is
	// any blob on a DIFFERENT shard, so the read hotspot keeps heat and
	// utilization flowing while the victim is down.
	victim := -1
	victimAddr := clients[0].VMRouter().Shard(blobs[0].ID())
	for i, a := range env.cluster.VMAddrs() {
		if a == victimAddr {
			victim = i
		}
	}
	if victim < 0 {
		return nil, fmt.Errorf("incident: victim shard for blob %d not found", blobs[0].ID())
	}
	hot := -1
	for w, bl := range blobs {
		if clients[w].VMRouter().Shard(bl.ID()) != victimAddr {
			hot = w
			break
		}
	}
	if hot < 0 {
		return nil, fmt.Errorf("incident: no blob landed off the victim shard")
	}
	var hotVer uint64
	for p := 0; p < incidentHotPages; p++ {
		wr, err := blobs[hot].Append(ctx, chunk(cfg, p))
		if err != nil {
			return nil, err
		}
		if _, err := blobs[hot].WaitPublished(ctx, wr.Ver); err != nil {
			return nil, err
		}
		hotVer = wr.Ver
	}

	// tracedAppend is the workload op the sampler sees: a full trace
	// rooted at blob.append, slow by construction on the shaped net.
	tracedAppend := func(w, op int) error {
		tctx, root := obs.StartTrace(ctx, "blob.append")
		wr, err := blobs[w].Append(tctx, chunk(cfg, w*1000+op))
		if err == nil {
			_, err = blobs[w].WaitPublished(tctx, wr.Ver)
		}
		root.End(err)
		return err
	}
	runWriters := func(opLo, opHi int) error {
		errs := make(chan error, incidentWriters)
		for w := 0; w < incidentWriters; w++ {
			go func(w int) {
				for op := opLo; op < opHi; op++ {
					if err := tracedAppend(w, op); err != nil {
						errs <- fmt.Errorf("writer %d op %d: %w", w, op, err)
						return
					}
				}
				errs <- nil
			}(w)
		}
		var first error
		for w := 0; w < incidentWriters; w++ {
			if err := <-errs; err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	// runHotspot fires Zipf-skewed reads at the hot BLOB: the page-heat
	// and utilization signal of the drill.
	runHotspot := func(seedOff int64) error {
		errs := make(chan error, incidentReaders)
		for r := 0; r < incidentReaders; r++ {
			go func(r int) {
				rng := rand.New(rand.NewSource(cfg.Seed + seedOff + int64(r)))
				zipf := rand.NewZipf(rng, incidentZipfS, 1, incidentHotPages-1)
				buf := make([]byte, cfg.PageSize)
				for i := 0; i < incidentHotReads; i++ {
					page := zipf.Uint64()
					if _, err := blobs[hot].ReadAtInto(ctx, hotVer, page*cfg.PageSize, buf); err != nil {
						errs <- fmt.Errorf("reader %d: %w", r, err)
						return
					}
				}
				errs <- nil
			}(r)
		}
		var first error
		for r := 0; r < incidentReaders; r++ {
			if err := <-errs; err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	// Phase 1: healthy traffic, enough collections for pre-kill
	// snapshots and a settled health baseline.
	if err := runWriters(0, incidentOpsPre); err != nil {
		return nil, err
	}
	if err := runHotspot(11); err != nil {
		return nil, err
	}
	for d.Monitor.Collections() < 3 {
		time.Sleep(incidentInterval)
	}

	healthRule := "component_health"
	firingNow := func() bool {
		for _, a := range d.Watchdog.Alerts() {
			if a.Rule == healthRule && a.State == flight.StateFiring {
				return true
			}
		}
		return false
	}
	if firingNow() {
		return nil, fmt.Errorf("incident: health alert firing before the kill")
	}

	// Phase 2: kill the victim mid-workload. Writers ride the routed
	// retry loop; the watchdog's next health check sees the dead shard.
	killTime := time.Now()
	collAtKill := d.Monitor.Collections()
	if err := env.cluster.KillVM(victim); err != nil {
		return nil, err
	}
	phaseErr := make(chan error, 2)
	go func() { phaseErr <- runWriters(incidentOpsPre, incidentOpsPre+incidentOpsPost) }()
	go func() { phaseErr <- runHotspot(29) }()

	// The alert must fire within one collection interval (plus the ping
	// timeout the check itself burns); give the poll a generous cap so
	// a loaded CI host doesn't flake, but record the actual delay.
	var fireDelay time.Duration
	var fireCollections uint64
	fireDeadline := time.Now().Add(10 * time.Second)
	for {
		if firingNow() {
			fireDelay = time.Since(killTime)
			fireCollections = d.Monitor.Collections() - collAtKill
			break
		}
		if time.Now().After(fireDeadline) {
			return nil, fmt.Errorf("incident: health alert did not fire within %v of the kill", 10*time.Second)
		}
		time.Sleep(5 * time.Millisecond)
	}

	time.Sleep(incidentOutage)
	if err := env.cluster.RestartVM(victim); err != nil {
		return nil, err
	}
	outage := time.Since(killTime)
	restartTime := time.Now()
	evalsAtRestart := d.Watchdog.Evals()
	for i := 0; i < 2; i++ {
		if err := <-phaseErr; err != nil {
			return nil, err
		}
	}

	// The alert clears only after ClearAfter consecutive healthy
	// evaluations — hysteresis, not a single good sample.
	var clearEvals uint64
	clearDeadline := time.Now().Add(10 * time.Second)
	for firingNow() {
		if time.Now().After(clearDeadline) {
			return nil, fmt.Errorf("incident: health alert did not clear within %v of the restart", 10*time.Second)
		}
		time.Sleep(5 * time.Millisecond)
	}
	clearEvals = d.Watchdog.Evals() - evalsAtRestart

	// Let a couple more snapshots land past the recovery so the replay
	// provably brackets the outage.
	collAfterClear := d.Monitor.Collections()
	for d.Monitor.Collections() < collAfterClear+2 {
		time.Sleep(incidentInterval)
	}
	d.Monitor.SetInterval(0) // quiesce: no more writes into the flight log

	// Post-crash replay: open a SECOND recorder on the same path while
	// the deployment's own handle is still live-but-abandoned — exactly
	// what a restarted process sees after a kill (no clean Close).
	replayRec, err := flight.Open(flightPath, flight.RecorderOptions{})
	if err != nil {
		return nil, fmt.Errorf("incident: post-kill reopen: %w", err)
	}
	defer replayRec.Close()
	events, err := replayRec.Replay()
	if err != nil {
		return nil, fmt.Errorf("incident: replay: %w", err)
	}

	res := &IncidentResult{
		Shards:          incidentShards,
		Writers:         incidentWriters,
		KilledShard:     victim,
		OutageMS:        float64(outage.Microseconds()) / 1000,
		FireDelayMS:     float64(fireDelay.Microseconds()) / 1000,
		FireCollections: fireCollections,
		ClearEvals:      clearEvals,
		ReplayEvents:    len(events),
	}
	for _, ev := range events {
		switch ev.Kind {
		case flight.KindTrace:
			res.ReplayTraces++
			if ev.Trace.Reason == "slow" && len(ev.Trace.Spans) > res.ReplaySlowTraceSpans {
				res.ReplaySlowTraceSpans = len(ev.Trace.Spans)
			}
		case flight.KindSnapshot:
			res.ReplaySnapshots++
			if ev.At.Before(killTime) {
				res.SnapshotsBeforeKill++
			}
			if ev.At.After(restartTime) {
				res.SnapshotsAfterRestart++
			}
		case flight.KindAlert:
			switch ev.Alert.State {
			case flight.StateFiring:
				res.AlertFires++
			case flight.StateOK:
				res.AlertClears++
			}
		case flight.KindHealth:
			res.HealthTransitions++
		}
	}
	res.TimelineRendered = len(flight.FormatTimeline(events)) > 0

	// Hard acceptance checks, enforced here so both the CLI run and the
	// test fail loudly when the drill degrades.
	if res.ReplaySlowTraceSpans < 2 {
		return nil, fmt.Errorf("incident: no replayed slow trace with a multi-span tree (best %d spans)", res.ReplaySlowTraceSpans)
	}
	if res.SnapshotsBeforeKill == 0 || res.SnapshotsAfterRestart == 0 {
		return nil, fmt.Errorf("incident: snapshot timeline does not bracket the kill (%d before, %d after)",
			res.SnapshotsBeforeKill, res.SnapshotsAfterRestart)
	}
	if res.AlertFires == 0 || res.AlertClears == 0 {
		return nil, fmt.Errorf("incident: replay missing alert transitions (%d fires, %d clears)", res.AlertFires, res.AlertClears)
	}
	if res.ClearEvals < 3 {
		return nil, fmt.Errorf("incident: alert cleared after %d evals; hysteresis demands >= 3", res.ClearEvals)
	}
	return res, nil
}
