package experiments

import (
	"fmt"

	"blobseer/internal/dfs"
	"blobseer/internal/metrics"
	"blobseer/internal/pagestore"
	"blobseer/internal/workload"
)

// GCResult shows that the lifecycle subsystem bounds storage that the
// paper's keep-every-version model grows without limit, under the two
// reclamation paths production append-heavy deployments hit:
//
//   - Overwrite (retention): concurrent writers keep rewriting a shared
//     BLOB's regions (checkpoint-style). Every write publishes a new
//     version; under RetainLatest(2) the collector retires old versions
//     and deletes the pages they alone can reach, so provider storage
//     plateaus near the working set, while the no-GC baseline grows by
//     one working set per round.
//   - Rotate (deletion): appenders fill a fresh log file per round and
//     delete the round-2 file — log rotation. With GC, "rm" retires the
//     backing BLOB and frees its pages; without, it merely drops the
//     namespace entry and storage grows linearly (the pre-GC repo
//     behaviour).
type GCResult struct {
	OverwriteGC   *metrics.Series // x = round, y = provider MiB
	OverwriteNoGC *metrics.Series
	RotateGC      *metrics.Series
	RotateNoGC    *metrics.Series

	// OverwriteBoundRatio is final GC-run provider bytes over the
	// overwrite working set (one full region set): the acceptance bound
	// is <= 2 plus in-flight slack, versus rounds× for the baseline.
	OverwriteBoundRatio float64
	// RotateBoundRatio is the same ratio for the rotation workload
	// (working set = the two live files).
	RotateBoundRatio float64
	// GCStats snapshots the collectors' counters across both GC runs.
	GCStats metrics.GCSnapshot
}

// gcRounds/gcWriters size the sustained workload; regions are
// gcRegionPages pages per writer.
const (
	gcRounds      = 8
	gcWriters     = 4
	gcRegionPages = 4
)

// GC runs the storage-lifecycle scenario: both workloads, each with
// and without the collector.
func GC(cfg Config) (*GCResult, error) {
	cfg = cfg.withDefaults()
	res := &GCResult{
		OverwriteGC:   &metrics.Series{Name: "overwrite retain=2", XLabel: "round", YLabel: "provider MiB"},
		OverwriteNoGC: &metrics.Series{Name: "overwrite no-gc", XLabel: "round", YLabel: "provider MiB"},
		RotateGC:      &metrics.Series{Name: "rotate gc", XLabel: "round", YLabel: "provider MiB"},
		RotateNoGC:    &metrics.Series{Name: "rotate no-gc", XLabel: "round", YLabel: "provider MiB"},
	}

	for _, gcOn := range []bool{true, false} {
		if err := gcOverwriteRun(cfg, gcOn, res); err != nil {
			return nil, fmt.Errorf("gc overwrite (gc=%v): %w", gcOn, err)
		}
		if err := gcRotateRun(cfg, gcOn, res); err != nil {
			return nil, fmt.Errorf("gc rotate (gc=%v): %w", gcOn, err)
		}
	}
	return res, nil
}

// gcOverwriteRun drives the retention path at the BLOB layer: gcWriters
// concurrent clients each rewrite their own region every round.
func gcOverwriteRun(cfg Config, gcOn bool, res *GCResult) error {
	env, err := newBSFSEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()
	env.deploy.GC.SetEnabled(gcOn)

	hosts := env.cluster.ProviderHosts()
	ps := cfg.PageSize
	region := uint64(gcRegionPages) * ps

	creator := env.cluster.Client(hosts[0])
	defer creator.Close()
	bl, err := creator.Create(ctx, ps)
	if err != nil {
		return err
	}
	if gcOn {
		if err := bl.SetRetention(ctx, 2); err != nil {
			return err
		}
	}

	series := res.OverwriteNoGC
	if gcOn {
		series = res.OverwriteGC
	}
	for round := 0; round < gcRounds; round++ {
		errs := make(chan error, gcWriters)
		for w := 0; w < gcWriters; w++ {
			go func(w int) {
				c := env.cluster.Client(hosts[w%len(hosts)])
				defer c.Close()
				data := make([]byte, region)
				pagestore.Fill(data, uint64(round*gcWriters+w+1))
				b := c.Handle(bl.ID(), ps)
				_, err := b.WriteAt(ctx, data, uint64(w)*region)
				errs <- err
			}(w)
		}
		for w := 0; w < gcWriters; w++ {
			if err := <-errs; err != nil {
				return err
			}
		}
		if gcOn {
			if _, err := env.deploy.GC.RunOnce(ctx); err != nil {
				return err
			}
		}
		series.Add(float64(round+1), float64(env.cluster.ProviderBytes())/(1<<20), 0)
	}
	if gcOn {
		working := float64(gcWriters) * float64(region)
		res.OverwriteBoundRatio = float64(env.cluster.ProviderBytes()) / working
		snap := env.deploy.GC.Stats().Snapshot()
		res.GCStats.VersionsCollected += snap.VersionsCollected
		res.GCStats.PagesReclaimed += snap.PagesReclaimed
		res.GCStats.BytesReclaimed += snap.BytesReclaimed
		res.GCStats.NodesDeleted += snap.NodesDeleted
		res.GCStats.Passes += snap.Passes
	}
	return nil
}

// gcRotateRun drives the deletion path at the file-system layer: each
// round appends a fresh log file and deletes the round-2 one.
func gcRotateRun(cfg Config, gcOn bool, res *GCResult) error {
	env, err := newBSFSEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()
	env.deploy.GC.SetEnabled(gcOn)

	fs := env.mount(0)
	ps := int(cfg.PageSize)
	series := res.RotateNoGC
	if gcOn {
		series = res.RotateGC
	}
	for round := 0; round < gcRounds; round++ {
		path := fmt.Sprintf("/gc/rot-%03d", round)
		text := workload.Text(gcRegionPages*ps, cfg.Seed+int64(round))
		if err := dfs.WriteFile(ctx, fs, path, []byte(text)); err != nil {
			return err
		}
		if round >= 2 {
			if err := fs.Delete(ctx, fmt.Sprintf("/gc/rot-%03d", round-2)); err != nil {
				return err
			}
		}
		if gcOn {
			// Deterministic sampling point: the delete already kicked the
			// collector; RunOnce serializes behind any in-flight pass and
			// guarantees the marked garbage is flushed before we measure.
			if _, err := env.deploy.GC.RunOnce(ctx); err != nil {
				return err
			}
		}
		series.Add(float64(round+1), float64(env.cluster.ProviderBytes())/(1<<20), 0)
	}
	if gcOn {
		working := 2 * float64(gcRegionPages) * float64(ps)
		res.RotateBoundRatio = float64(env.cluster.ProviderBytes()) / working
		snap := env.deploy.GC.Stats().Snapshot()
		res.GCStats.BlobsDeleted += snap.BlobsDeleted
		res.GCStats.VersionsCollected += snap.VersionsCollected
		res.GCStats.PagesReclaimed += snap.PagesReclaimed
		res.GCStats.BytesReclaimed += snap.BytesReclaimed
		res.GCStats.NodesDeleted += snap.NodesDeleted
		res.GCStats.Passes += snap.Passes
	}
	return nil
}
