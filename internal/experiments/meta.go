package experiments

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/pagestore"
	"blobseer/internal/simnet"
	"blobseer/internal/transport"
)

// The Meta scenario exercises the metadata plane the paper keeps
// centralized: "the version manager ... is the only serialization
// point of BlobSeer" (§3.1.1). Three parts:
//
//   - Scaling: many writers, each appending tiny records to its own
//     BLOB, so every operation is metadata-bound (assign + complete +
//     publish-wait + two lookups all hit the version manager, while
//     the 256-byte payload barely touches the data plane). The sweep
//     re-runs the same workload with 1, 2 and 4 version-manager
//     shards on a deliberately narrow modeled NIC; aggregate publish
//     throughput must grow with the shard count.
//   - Failover: a 3-shard journaled deployment under the same
//     workload. One shard is killed mid-run WITHOUT a final
//     checkpoint and restarted from its journal a moment later;
//     writers ride the router's retry loop across the outage. Every
//     append acknowledged at any point must read back byte-identical
//     afterwards — the acceptance bar is zero lost acknowledged
//     writes.
//   - Recovery: the whole metadata plane is then killed and restarted
//     cold. The replayed shards must serve the full pre-crash history
//     (latest version, history length, and payload bytes per BLOB);
//     the result records how many journal records replay restored and
//     how long it took.

// MetaPoint is one scaling measurement.
type MetaPoint struct {
	Shards    int     `json:"shards"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// MetaFailover reports the kill-one-shard run.
type MetaFailover struct {
	Shards       int     `json:"shards"`
	Writers      int     `json:"writers"`
	KilledShard  int     `json:"killed_shard"`
	AckedBefore  int     `json:"acked_before_kill"`
	AckedTotal   int     `json:"acked_total"`
	LostWrites   int     `json:"lost_writes"`
	OutageMS     float64 `json:"outage_ms"`
	ResumedAfter int     `json:"acked_after_restart"`
}

// MetaRecovery reports the cold-restart replay.
type MetaRecovery struct {
	Shards   int     `json:"shards"`
	Records  int     `json:"journal_records_replayed"`
	Blobs    int     `json:"blobs"`
	Versions uint64  `json:"versions_served"`
	ReplayMS float64 `json:"replay_ms"`
}

// MetaResult bundles all three parts; it marshals directly into the
// BENCH_meta.json artifact.
type MetaResult struct {
	Scaling  []MetaPoint  `json:"scaling"`
	Failover MetaFailover `json:"failover"`
	Recovery MetaRecovery `json:"recovery"`
}

// Meta-scenario sizing. The metadata hosts' modeled NIC is 8x
// narrower than everyone else's: with 256-byte payloads the
// version-manager endpoints are the only saturated links, which is
// exactly the bottleneck sharding attacks. Each writer owns one BLOB,
// so BLOBs (and their journal records) spread across the shard ring.
const (
	metaClientBW   = 4 * (1 << 20) // bytes/s: client/provider NICs
	metaVMBW       = 1 * (1 << 19) // bytes/s: metadata host NICs, the bottleneck
	metaPayload    = 256           // bytes per append
	metaPageSize   = 4096          // page size of the workload BLOBs
	metaProviders  = 48            // one writer per client host NIC
	metaWriters    = 48            // scaling part: one BLOB each
	metaOpsPerW    = 12            // scaling part: appends per writer
	failWriters    = 12            // failover part
	failOpsBefore  = 6             // acked per writer before the kill
	failOpsAfter   = 10            // acked per writer after the kill starts
	failOutage     = 200 * time.Millisecond
	metaShardSweep = 3 // scaling sweep: 1 << i for i < metaShardSweep
)

// Meta runs the metadata-plane scenario: shard-count scaling, a
// kill-one-shard failover, and a cold-restart replay.
func Meta(cfg Config) (*MetaResult, error) {
	cfg = cfg.withDefaults()
	res := &MetaResult{}

	for i := 0; i < metaShardSweep; i++ {
		shards := 1 << i
		ops, err := metaScalingRun(cfg, shards)
		if err != nil {
			return nil, fmt.Errorf("meta scaling (%d shards): %w", shards, err)
		}
		res.Scaling = append(res.Scaling, MetaPoint{Shards: shards, OpsPerSec: ops})
	}

	if err := metaFailoverRun(cfg, res); err != nil {
		return nil, fmt.Errorf("meta failover: %w", err)
	}
	return res, nil
}

// metaEnv boots a bare blob.Cluster (no BSFS layer — the scenario
// measures the BLOB metadata plane directly) on a shaped transport.
type metaEnv struct {
	net     *simnet.Net
	cluster *blob.Cluster

	mu      sync.Mutex
	clients []*blob.Client
}

func newMetaEnv(cfg Config, shards int, journalDir string) (*metaEnv, error) {
	// The metadata hosts get a deliberately narrower NIC than the rest
	// of the cluster, so the sweep measures the serialization point the
	// paper centralizes (§3.1.1), not the data plane: tiny appends leave
	// client and provider links mostly idle while control messages
	// saturate the version managers.
	perHost := make(map[string]float64, shards)
	for i := 0; i < shards; i++ {
		perHost[blob.VMShardHost(i)] = metaVMBW
	}
	net := simnet.New(transport.NewMemNet(), simnet.Config{
		Bandwidth:     metaClientBW,
		Latency:       cfg.Latency,
		FrameOverhead: 64,
		PerHost:       perHost,
	})
	cluster, err := blob.NewCluster(net, blob.ClusterConfig{
		Providers:     metaProviders,
		MetaProviders: cfg.MetaProviders,
		Strategy:      cfg.Placement,
		VMShards:      shards,
		JournalDir:    journalDir,
	})
	if err != nil {
		return nil, err
	}
	return &metaEnv{net: net, cluster: cluster}, nil
}

// client returns a blob client co-located with provider i.
func (e *metaEnv) client(i int) *blob.Client {
	hosts := e.cluster.ProviderHosts()
	c := e.cluster.Client(hosts[i%len(hosts)])
	e.mu.Lock()
	e.clients = append(e.clients, c)
	e.mu.Unlock()
	return c
}

func (e *metaEnv) Close() {
	e.mu.Lock()
	clients := e.clients
	e.clients = nil
	e.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	e.cluster.Close()
}

// metaOp is one metadata-bound operation: append a tiny record, wait
// for its version to publish, then hit the version manager twice more
// the way readers do (GetVersion + Latest).
func metaOp(c *blob.Client, bl *blob.Blob, seed uint64) (blob.WriteResult, error) {
	data := make([]byte, metaPayload)
	pagestore.Fill(data, seed)
	wr, err := bl.Append(ctx, data)
	if err != nil {
		return wr, err
	}
	if _, err := bl.WaitPublished(ctx, wr.Ver); err != nil {
		return wr, err
	}
	if _, err := bl.GetVersion(ctx, wr.Ver); err != nil {
		return wr, err
	}
	if _, err := bl.Latest(ctx); err != nil {
		return wr, err
	}
	return wr, nil
}

// metaScalingRun measures aggregate publish throughput at one shard
// count: metaWriters writers, one BLOB each, metaOpsPerW ops each.
func metaScalingRun(cfg Config, shards int) (float64, error) {
	env, err := newMetaEnv(cfg, shards, "")
	if err != nil {
		return 0, err
	}
	defer env.Close()

	blobs := make([]*blob.Blob, metaWriters)
	clients := make([]*blob.Client, metaWriters)
	for w := 0; w < metaWriters; w++ {
		clients[w] = env.client(w)
		bl, err := clients[w].Create(ctx, metaPageSize)
		if err != nil {
			return 0, err
		}
		blobs[w] = bl
	}

	start := time.Now()
	errs := make(chan error, metaWriters)
	for w := 0; w < metaWriters; w++ {
		go func(w int) {
			for op := 0; op < metaOpsPerW; op++ {
				if _, err := metaOp(clients[w], blobs[w], uint64(w*1000+op+1)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < metaWriters; w++ {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start).Seconds()
	return float64(metaWriters*metaOpsPerW) / elapsed, nil
}

// ackedWrite is one acknowledged append: enough to re-derive and
// re-verify its payload after a crash.
type ackedWrite struct {
	blob  uint64
	ver   uint64
	start uint64
	seed  uint64
}

// metaFailoverRun drives the journaled 3-shard deployment, kills one
// shard mid-workload, restarts it from its journal, verifies zero
// acknowledged-write loss, then cold-restarts the whole plane and
// verifies the replayed history (filling res.Failover and
// res.Recovery).
func metaFailoverRun(cfg Config, res *MetaResult) error {
	dir, err := os.MkdirTemp("", "blobseer-meta-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	const shards = 3
	env, err := newMetaEnv(cfg, shards, dir)
	if err != nil {
		return err
	}
	defer env.Close()

	blobs := make([]*blob.Blob, failWriters)
	clients := make([]*blob.Client, failWriters)
	for w := 0; w < failWriters; w++ {
		clients[w] = env.client(w)
		bl, err := clients[w].Create(ctx, metaPageSize)
		if err != nil {
			return err
		}
		blobs[w] = bl
	}
	// Kill the shard owning writer 0's BLOB, so at least one writer is
	// provably routed through the outage.
	victim := -1
	victimAddr := clients[0].VMRouter().Shard(blobs[0].ID())
	for i, a := range env.cluster.VMAddrs() {
		if a == victimAddr {
			victim = i
		}
	}
	if victim < 0 {
		return fmt.Errorf("victim shard for blob %d not found", blobs[0].ID())
	}

	var mu sync.Mutex
	var acked []ackedWrite
	record := func(w, op int, bl *blob.Blob, wr blob.WriteResult, seed uint64) {
		mu.Lock()
		acked = append(acked, ackedWrite{blob: bl.ID(), ver: wr.Ver, start: wr.Start, seed: seed})
		mu.Unlock()
	}
	runPhase := func(opLo, opHi int) error {
		errs := make(chan error, failWriters)
		for w := 0; w < failWriters; w++ {
			go func(w int) {
				for op := opLo; op < opHi; op++ {
					seed := uint64(w)<<32 | uint64(op+1)
					wr, err := metaOp(clients[w], blobs[w], seed)
					if err != nil {
						errs <- fmt.Errorf("writer %d op %d: %w", w, op, err)
						return
					}
					record(w, op, blobs[w], wr, seed)
				}
				errs <- nil
			}(w)
		}
		var first error
		for w := 0; w < failWriters; w++ {
			if err := <-errs; err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	// Phase 1: build up acknowledged state on every shard.
	if err := runPhase(0, failOpsBefore); err != nil {
		return err
	}
	ackedBefore := len(acked)

	// Phase 2: writers run while the victim shard crashes and a standby
	// replays its journal at the same address. Routed RPCs to the dead
	// endpoint ride the capped-backoff retry loop until takeover.
	outageStart := time.Now()
	if err := env.cluster.KillVM(victim); err != nil {
		return err
	}
	phaseErr := make(chan error, 1)
	go func() { phaseErr <- runPhase(failOpsBefore, failOpsBefore+failOpsAfter) }()
	time.Sleep(failOutage)
	if err := env.cluster.RestartVM(victim); err != nil {
		return err
	}
	outage := time.Since(outageStart)
	if err := <-phaseErr; err != nil {
		return err
	}

	// Verify: every acknowledged write reads back byte-identical.
	lost, err := metaVerify(clients[0], acked)
	if err != nil {
		return err
	}
	res.Failover = MetaFailover{
		Shards:       shards,
		Writers:      failWriters,
		KilledShard:  victim,
		AckedBefore:  ackedBefore,
		AckedTotal:   len(acked),
		LostWrites:   lost,
		OutageMS:     float64(outage.Microseconds()) / 1000,
		ResumedAfter: len(acked) - ackedBefore,
	}
	if lost > 0 {
		return fmt.Errorf("failover lost %d of %d acknowledged writes", lost, len(acked))
	}

	// Part 3: cold restart. Kill every shard (no final checkpoints) and
	// bring the whole plane back from the journals alone.
	for i := 0; i < shards; i++ {
		if err := env.cluster.KillVM(i); err != nil {
			return err
		}
	}
	replayStart := time.Now()
	records := 0
	for i := 0; i < shards; i++ {
		if err := env.cluster.RestartVM(i); err != nil {
			return err
		}
		records += env.cluster.VMs[i].RecoveredRecords()
	}
	replay := time.Since(replayStart)

	lost, err = metaVerify(clients[0], acked)
	if err != nil {
		return err
	}
	if lost > 0 {
		return fmt.Errorf("cold restart lost %d of %d acknowledged writes", lost, len(acked))
	}
	var versions uint64
	for _, bl := range blobs {
		info, err := bl.Latest(ctx)
		if err != nil {
			return err
		}
		versions += info.Ver
		hist, err := bl.History(ctx, 0)
		if err != nil {
			return err
		}
		if uint64(len(hist)) != info.Ver {
			return fmt.Errorf("blob %d: history has %d entries, latest is v%d", bl.ID(), len(hist), info.Ver)
		}
	}
	res.Recovery = MetaRecovery{
		Shards:   shards,
		Records:  records,
		Blobs:    failWriters,
		Versions: versions,
		ReplayMS: float64(replay.Microseconds()) / 1000,
	}
	return nil
}

// metaVerify re-reads every acknowledged write through a fresh handle
// and counts the ones that fail or come back with the wrong bytes.
func metaVerify(c *blob.Client, acked []ackedWrite) (int, error) {
	lost := 0
	for _, a := range acked {
		bl := c.Handle(a.blob, metaPageSize)
		want := make([]byte, metaPayload)
		pagestore.Fill(want, a.seed)
		got, err := bl.ReadAt(ctx, a.ver, a.start, metaPayload)
		if err != nil {
			lost++
			continue
		}
		if !bytes.Equal(got, want) {
			lost++
		}
	}
	return lost, nil
}
