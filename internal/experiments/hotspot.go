package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"blobseer/internal/metrics"
	"blobseer/internal/monitor"
)

// The hotspot scenario validates the cluster monitor's page-heat
// tracking against ground truth: a Zipf-skewed read workload over more
// distinct pages than the heat sketch has counters, so the bounded
// sketch must rank under eviction pressure. Acceptance: the sketch's
// top-10 hot pages match the true top-10 with precision >= 0.9, and
// the provider the monitor reports as hottest (highest read rate /
// NIC utilization) actually holds one of the truly hot pages.
const (
	// hotspotPages is the distinct-page working set; it is double
	// monitor.DefaultHeatCapacity on purpose, so roughly half the pages
	// fight over sketch counters and the heavy hitters must survive
	// churn from the cold tail.
	hotspotPages = 2 * monitor.DefaultHeatCapacity
	// hotspotAccesses is the total page reads issued across readers.
	hotspotAccesses = 4000
	// hotspotReaders is the concurrent reader-mount count.
	hotspotReaders = 16
	// hotspotTopK is the hot-set size precision is scored on.
	hotspotTopK = 10
	// hotspotZipfS is the Zipf skew exponent (s > 1 concentrates mass:
	// the top page draws ~20% of all accesses at s = 1.2).
	hotspotZipfS = 1.2
	// hotspotPageSize overrides cfg.PageSize: heat ranking counts page
	// touches, not bytes, and small pages keep the skewed read phase —
	// serialized on the hot pages' holder NICs — down to seconds.
	hotspotPageSize = 32 << 10
)

// HotspotResult reports how well the monitor's heat sketch and
// per-provider rates located a synthetic hotspot.
type HotspotResult struct {
	// Pages, Accesses and Readers echo the workload shape.
	Pages    int
	Accesses int
	Readers  int
	// Precision is |sketch top-10 ∩ true top-10| / 10.
	Precision float64
	// TrueTop and SketchTop are the page indices, hottest first.
	TrueTop   []uint64
	SketchTop []uint64
	// ReplicaImbalance is the monitor's max/mean provider read-rate
	// ratio over the workload window (> 1 under skew).
	ReplicaImbalance float64
	// MaxUtilization is the hottest provider's modeled NIC utilization.
	MaxUtilization float64
	// HotProvider is the provider host the monitor ranks hottest by
	// read rate; HotProviderIsHolder reports whether it actually holds
	// a replica of one of the true top-10 pages.
	HotProvider         string
	HotProviderIsHolder bool
}

// Hotspot runs the skewed-read workload and scores the monitor's view
// of it. The returned series plot sketch weight and true access count
// by hot-set rank, for the BENCH report.
func Hotspot(cfg Config) (*HotspotResult, []*metrics.Series, error) {
	cfg = cfg.withDefaults()
	cfg.PageSize = hotspotPageSize
	env, err := newBSFSEnv(cfg)
	if err != nil {
		return nil, nil, err
	}
	defer env.Close()

	const path = "/bench/hotspot/file"
	if err := preload(env, cfg, path, hotspotPages); err != nil {
		return nil, nil, err
	}
	env.closeMounts()

	// Pre-generate the access plan so ground truth is exact: a Zipf
	// draw mapped through a random permutation (hot pages land anywhere
	// in the file, not at its head), dealt round-robin to readers. A
	// reader's one-block view means an immediately repeated page would
	// not reach the provider again, so consecutive duplicates are
	// steered to another reader (or dropped): every planned access is
	// one real page fetch, and counting the plan counts the fetches.
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	zipf := rand.NewZipf(rng, hotspotZipfS, 1, hotspotPages-1)
	perm := rng.Perm(hotspotPages)
	seqs := make([][]uint64, hotspotReaders)
	last := make([]int64, hotspotReaders)
	for i := range last {
		last[i] = -1
	}
	counts := make(map[uint64]uint64, hotspotPages)
	for k := 0; k < hotspotAccesses; k++ {
		page := uint64(perm[zipf.Uint64()])
		r := k % hotspotReaders
		for try := 0; try < hotspotReaders && last[r] == int64(page); try++ {
			r = (r + 1) % hotspotReaders
		}
		if last[r] == int64(page) {
			continue
		}
		seqs[r] = append(seqs[r], page)
		last[r] = int64(page)
		counts[page]++
	}
	trueTop := topCounted(counts, hotspotTopK)

	// Prime the rate EWMAs, run the readers, then collect again so the
	// per-provider rates cover exactly the workload window.
	mon := env.deploy.Monitor
	mon.CollectOnce()

	var wg sync.WaitGroup
	errs := make(chan error, hotspotReaders)
	for r := 0; r < hotspotReaders; r++ {
		if len(seqs[r]) == 0 {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			f, err := env.mount(r).Open(ctx, path)
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			buf := make([]byte, cfg.PageSize)
			for _, page := range seqs[r] {
				if _, err := f.ReadAt(buf, int64(page)*int64(cfg.PageSize)); err != nil {
					errs <- fmt.Errorf("read page %d: %w", page, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, nil, err
	}

	mon.CollectOnce()
	snap := mon.Snapshot(hotspotTopK)

	res := &HotspotResult{
		Pages:            hotspotPages,
		Accesses:         hotspotAccesses,
		Readers:          hotspotReaders,
		TrueTop:          trueTop,
		ReplicaImbalance: snap.ReplicaImbalance,
	}
	for _, e := range snap.HotReads {
		res.SketchTop = append(res.SketchTop, e.Page)
	}
	res.Precision = overlap(res.SketchTop, trueTop, hotspotTopK)

	// The monitor's hottest provider should be a holder of a truly hot
	// page: rank providers by read rate, then check against the block
	// locations of the true top-10.
	holders := make(map[string]bool)
	loc := env.mount(0)
	for _, page := range trueTop {
		locs, err := loc.BlockLocations(ctx, path, page*cfg.PageSize, cfg.PageSize)
		if err != nil {
			return nil, nil, err
		}
		for _, l := range locs {
			for _, h := range l.Hosts {
				holders[h] = true
			}
		}
	}
	env.closeMounts()
	rateKey := "read_bytes_per_sec"
	var bestRate float64
	for _, c := range snap.Components {
		if c.Kind != monitor.KindProvider {
			continue
		}
		if c.Utilization > res.MaxUtilization {
			res.MaxUtilization = c.Utilization
		}
		if res.HotProvider == "" || c.Rates[rateKey] > bestRate {
			res.HotProvider, bestRate = c.Name, c.Rates[rateKey]
		}
	}
	res.HotProviderIsHolder = holders[res.HotProvider]

	sketch := &metrics.Series{Name: "sketch heat", XLabel: "rank", YLabel: "decayed weight"}
	for i, e := range snap.HotReads {
		sketch.Add(float64(i+1), e.Weight, 0)
	}
	truth := &metrics.Series{Name: "true accesses", XLabel: "rank", YLabel: "count"}
	for i, page := range trueTop {
		truth.Add(float64(i+1), float64(counts[page]), 0)
	}
	return res, []*metrics.Series{sketch, truth}, nil
}

// topCounted returns the k highest-count pages, count descending with
// page index breaking ties, so ground truth is deterministic.
func topCounted(counts map[uint64]uint64, k int) []uint64 {
	pages := make([]uint64, 0, len(counts))
	for p := range counts {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool {
		if counts[pages[i]] != counts[pages[j]] {
			return counts[pages[i]] > counts[pages[j]]
		}
		return pages[i] < pages[j]
	})
	if len(pages) > k {
		pages = pages[:k]
	}
	return pages
}

// overlap scores |a ∩ b| / k.
func overlap(a, b []uint64, k int) float64 {
	in := make(map[uint64]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	hits := 0
	for _, x := range a {
		if in[x] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}
