package experiments

import (
	"fmt"
	"time"

	"blobseer/internal/apps/wordcount"
	"blobseer/internal/dfs"
	"blobseer/internal/mapreduce"
	"blobseer/internal/metrics"
	"blobseer/internal/shuffle"
	"blobseer/internal/workload"
)

// ShuffleResult compares the two shuffle backends on the same
// Map/Reduce job, with and without tracker failure injected at the
// map/reduce barrier — the moment every map has finished and the
// intermediate data is all that keeps the job alive. The memory
// backend loses the dead trackers' outputs and re-executes their maps;
// the blob backend's segments live in BlobSeer and the job proceeds
// with zero re-runs.
type ShuffleResult struct {
	// Completion time (s) versus failure injection (x = 0: none,
	// x = 1: half the trackers killed at the barrier).
	TimeMemory *metrics.Series
	TimeBlob   *metrics.Series
	// Map outputs lost (and therefore maps re-executed), same sweep.
	RerunsMemory *metrics.Series
	RerunsBlob   *metrics.Series

	// BlobOverlapSec is map-phase end minus first segment fetch in the
	// failure-free blob run: positive means the shuffle overlapped the
	// map phase (reduce-side fetching started before the last map
	// finished).
	BlobOverlapSec float64
	// BlobRecovered counts segments served after their producing
	// tracker died in the failure run — exactly the data the memory
	// backend had to regenerate.
	BlobRecovered uint64
}

// shuffleTrackers caps the tasktracker pool so the map phase takes
// several waves (overlap is visible) and a barrier kill of half the
// pool is guaranteed to hit tracker-resident outputs.
const shuffleTrackers = 8

// Shuffle runs the shuffle-backend comparison: {memory, blob} x
// {no failure, barrier kill} on a wordcount sized to ~3 map waves.
func Shuffle(cfg Config) (*ShuffleResult, error) {
	cfg = cfg.withDefaults()

	res := &ShuffleResult{
		TimeMemory:   &metrics.Series{Name: "memory shuffle", XLabel: "tracker failure", YLabel: "time (s)"},
		TimeBlob:     &metrics.Series{Name: "blob shuffle", XLabel: "tracker failure", YLabel: "time (s)"},
		RerunsMemory: &metrics.Series{Name: "memory map re-runs", XLabel: "tracker failure", YLabel: "maps"},
		RerunsBlob:   &metrics.Series{Name: "blob map re-runs", XLabel: "tracker failure", YLabel: "maps"},
	}

	text := workload.Text(int(24*cfg.PageSize), cfg.Seed+61)
	for _, backend := range []shuffle.Backend{shuffle.Memory, shuffle.Blob} {
		for _, kill := range []bool{false, true} {
			r, err := runShufflePoint(cfg, backend, kill, text)
			if err != nil {
				return nil, fmt.Errorf("shuffle scenario %s kill=%v: %w", backend, kill, err)
			}
			x := 0.0
			if kill {
				x = 1.0
			}
			timeS, rerunS := res.TimeMemory, res.RerunsMemory
			if backend == shuffle.Blob {
				timeS, rerunS = res.TimeBlob, res.RerunsBlob
			}
			timeS.Add(x, r.Duration.Seconds(), 0)
			rerunS.Add(x, float64(r.MapOutputsLost), 0)
			if backend == shuffle.Blob {
				if !kill && r.FirstShuffleFetch > 0 {
					res.BlobOverlapSec = (r.MapPhase - r.FirstShuffleFetch).Seconds()
				}
				if kill {
					res.BlobRecovered = r.SegmentsRecovered
				}
			}
		}
	}
	return res, nil
}

// runShufflePoint executes one job on a fresh framework (the kill is
// destructive) and returns its result.
func runShufflePoint(cfg Config, backend shuffle.Backend, kill bool, text string) (mapreduce.JobResult, error) {
	fw, clientFS, cleanup, err := newFramework(cfg, "bsfs", 0, 0, shuffleTrackers)
	if err != nil {
		return mapreduce.JobResult{}, err
	}
	defer cleanup()
	if err := dfs.WriteFile(ctx, clientFS, "/in/corpus", []byte(text)); err != nil {
		return mapreduce.JobResult{}, err
	}
	job := wordcount.Job([]string{"/in/corpus"}, "/out", 8, mapreduce.SeparateFiles)
	job.Shuffle = backend
	// Intermediate partitions are far smaller than input chunks;
	// page-sized intermediate BLOB pages would drown the comparison in
	// padding (segments pad to whole pages to stay boundary-merge-
	// free). An eighth of the chunk size bounds the waste while
	// keeping appends page-aligned.
	job.ShufflePageSize = cfg.PageSize / 8
	job.MapCostPerRecord = 10 * time.Microsecond
	if kill {
		trackers := fw.Trackers()
		job.MapsDoneHook = func() {
			for i := 1; i < len(trackers); i += 2 {
				trackers[i].Kill()
			}
		}
	}
	return fw.Run(ctx, job)
}
