package experiments

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"

	"blobseer/internal/blob"
	"blobseer/internal/bsfs"
	"blobseer/internal/dfs"
	"blobseer/internal/mapreduce"
)

// SnapshotResult demonstrates the snapshot-first API end to end: while
// snapAppenders concurrent appenders keep growing one shared file,
//
//   - fixed-version readers (OpenVersion) return byte-identical data
//     for their snapshot across the whole run — each open holds a GC
//     pin, so retention never reclaims a snapshot out from under a
//     live reader;
//   - a WaitVersion tailing reader follows the file as a sequence of
//     immutable prefixes, each extending the last;
//   - a Map/Reduce job submitted mid-append pins its input version at
//     submit and processes exactly the bytes that existed then,
//     however far the appenders grow the file during the job;
//   - once every pin is released, a GC pass under RetainLatest
//     collects the old snapshots and re-opening one fails with the
//     stable dfs.ErrVersionGone sentinel.
type SnapshotResult struct {
	Appenders int
	Rounds    int // page-sized appends per appender

	// FixedSnapshots is how many distinct versions were pinned and
	// re-verified; FixedReads counts the verification reads, all of
	// which returned bytes identical to the first read (the scenario
	// fails otherwise).
	FixedSnapshots int
	FixedReads     int

	// TailVersions is how many snapshots the tailing reader observed;
	// every one extended the previous (consistent prefixes).
	TailVersions int

	// PinnedVersion/PinnedSize are the mid-append job's input pin;
	// JobInputBytes is what its splits covered (== PinnedSize) and
	// JobRecords the records its maps read (== PinnedSize per line).
	PinnedVersion uint64
	PinnedSize    uint64
	JobInputBytes uint64
	JobRecords    uint64
	FinalSize     uint64

	// VersionsListed is the retention window's length at the end;
	// VersionsCollected counts snapshots the final GC pass reclaimed
	// after the pins released, and GoneAfterGC reports that re-opening
	// a collected snapshot failed with dfs.ErrVersionGone.
	VersionsListed    int
	VersionsCollected uint64
	GoneAfterGC       bool
}

// Scenario shape: 8+ concurrent appenders (the acceptance floor),
// fixed-width records so the mid-append job's input is arithmetically
// checkable, and a retention policy tight enough that the final GC
// pass visibly collects history once the pins release.
const (
	snapAppenders = 8
	snapRounds    = 6
	snapLineBytes = 64
	snapRetain    = 4
)

// snapBlock builds one page of fixed-width newline-terminated records.
func snapBlock(pageSize uint64, appender, round int) []byte {
	var b bytes.Buffer
	for b.Len() < int(pageSize) {
		line := fmt.Sprintf("appender=%03d round=%03d seq=%06d", appender, round, b.Len()/snapLineBytes)
		for len(line) < snapLineBytes-1 {
			line += "."
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.Bytes()[:pageSize]
}

// snapReadAll reads a fixed-version reader fully.
func snapReadAll(r dfs.FileReader) ([]byte, error) {
	buf := make([]byte, r.Size())
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// fixedSnap is one pinned fixed-version reader under verification.
type fixedSnap struct {
	ver uint64
	r   dfs.VersionedReader
	sum [32]byte
}

// Snapshot runs the snapshot-consistency scenario.
func Snapshot(cfg Config) (*SnapshotResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Retain == 0 {
		cfg.Retain = snapRetain
	}
	env, err := newBSFSEnvStore(cfg, blob.StoreMemory)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	res := &SnapshotResult{Appenders: snapAppenders, Rounds: snapRounds}
	const path = "/snap/events"
	fs := env.mount(0)
	if err := dfs.WriteFile(ctx, fs, path, snapBlock(cfg.PageSize, 999, 0)); err != nil {
		return nil, err
	}

	// --- Appenders: page-aligned atomic appends, fully concurrent,
	// in two phases. Phase 1 runs immediately; each appender then
	// flushes (so the mid-run state is fully published) and parks at a
	// barrier until the mid-append job's first map record is read —
	// which is after the job pinned its input version — so phase 2 is
	// guaranteed to overlap the running job and every later
	// verification races real concurrent growth, deterministically. ---
	var wg, phase1 sync.WaitGroup
	resume := make(chan struct{})
	appErr := make(chan error, snapAppenders)
	wg.Add(snapAppenders)
	phase1.Add(snapAppenders)
	for w := 0; w < snapAppenders; w++ {
		go func(w int) {
			defer wg.Done()
			phase1Done := false
			defer func() {
				if !phase1Done {
					phase1.Done() // error exits must not wedge the barrier
				}
			}()
			m := env.mount(w + 1)
			f, err := m.Append(ctx, path)
			if err != nil {
				appErr <- fmt.Errorf("appender %d: %w", w, err)
				return
			}
			defer f.Close()
			half := snapRounds / 2
			for r := 0; r < snapRounds; r++ {
				if r == half {
					if err := f.(dfs.Flusher).Flush(); err != nil {
						appErr <- fmt.Errorf("appender %d flush: %w", w, err)
						return
					}
					phase1Done = true
					phase1.Done()
					<-resume
				}
				if _, err := f.Write(snapBlock(cfg.PageSize, w, r)); err != nil {
					appErr <- fmt.Errorf("appender %d round %d: %w", w, r, err)
					return
				}
			}
			if err := f.Close(); err != nil {
				appErr <- fmt.Errorf("appender %d close: %w", w, err)
			}
		}(w)
	}

	// --- Tailing reader: WaitVersion + OpenVersion, reading only each
	// snapshot's new suffix; every snapshot must extend the last. ---
	tailCtx, tailStop := context.WithCancel(ctx)
	tailDone := make(chan error, 1)
	go func() {
		m := env.mount(snapAppenders + 1)
		vfs := dfs.VersionedFileSystem(m)
		var after, prevSize uint64
		n := 0
		for {
			vi, err := vfs.WaitVersion(tailCtx, path, after)
			if err != nil {
				if tailCtx.Err() != nil {
					break // appenders finished; clean exit
				}
				tailDone <- fmt.Errorf("tail wait after %d: %w", after, err)
				return
			}
			if vi.Size < prevSize {
				tailDone <- fmt.Errorf("tail: snapshot %d shrank: %d < %d", vi.Version, vi.Size, prevSize)
				return
			}
			r, err := vfs.OpenVersion(tailCtx, path, vi.Version)
			if err != nil {
				if tailCtx.Err() != nil {
					break
				}
				tailDone <- fmt.Errorf("tail open %d: %w", vi.Version, err)
				return
			}
			if vi.Size > prevSize {
				suffix := make([]byte, vi.Size-prevSize)
				if _, err := r.ReadAt(suffix, int64(prevSize)); err != nil && err != io.EOF {
					r.Close()
					if tailCtx.Err() != nil {
						break
					}
					tailDone <- fmt.Errorf("tail read %d: %w", vi.Version, err)
					return
				}
			}
			r.Close()
			prevSize = vi.Size
			after = vi.Version
			n++
		}
		res.TailVersions = n
		tailDone <- nil
	}()

	// --- Fixed-version snapshots, pinned while the file grows. ---
	var fixed []fixedSnap
	pinSnapshot := func() error {
		fi, err := fs.Stat(ctx, path)
		if err != nil {
			return err
		}
		r, err := fs.OpenVersion(ctx, path, fi.Version)
		if err != nil {
			return fmt.Errorf("pin snapshot %d: %w", fi.Version, err)
		}
		data, err := snapReadAll(r)
		if err != nil {
			r.Close()
			return fmt.Errorf("first read of snapshot %d: %w", fi.Version, err)
		}
		fixed = append(fixed, fixedSnap{ver: fi.Version, r: r, sum: sha256.Sum256(data)})
		return nil
	}
	// verifyFixed re-reads every pinned snapshot — through the held
	// reader AND through a fresh versioned open — and fails unless the
	// bytes are identical to the first read.
	verifyFixed := func() error {
		for _, s := range fixed {
			data, err := snapReadAll(s.r)
			if err != nil {
				return fmt.Errorf("re-read of held snapshot %d: %w", s.ver, err)
			}
			if sha256.Sum256(data) != s.sum {
				return fmt.Errorf("snapshot %d: held reader bytes changed", s.ver)
			}
			res.FixedReads++
			r2, err := fs.OpenVersion(ctx, path, s.ver)
			if err != nil {
				return fmt.Errorf("re-open of snapshot %d: %w", s.ver, err)
			}
			data, err = snapReadAll(r2)
			r2.Close()
			if err != nil {
				return fmt.Errorf("re-read of re-opened snapshot %d: %w", s.ver, err)
			}
			if sha256.Sum256(data) != s.sum {
				return fmt.Errorf("snapshot %d: re-opened bytes changed", s.ver)
			}
			res.FixedReads++
		}
		return nil
	}
	closeFixed := func() {
		for _, s := range fixed {
			s.r.Close()
		}
		fixed = nil
	}
	defer closeFixed()

	// fail drains the scenario's goroutines (appenders run a finite
	// script once released, and the tailer honours tailStop) before
	// tearing the environment down, so no goroutine touches a closed
	// deployment.
	var resumeOnce sync.Once
	release := func() { resumeOnce.Do(func() { close(resume) }) }
	fail := func(err error) (*SnapshotResult, error) {
		release()
		wg.Wait()
		tailStop()
		<-tailDone
		return nil, err
	}

	// Pin the first fixed snapshot at the phase-1 barrier: a fully
	// published mid-run state the second half of the appends will grow
	// straight past.
	phase1.Wait()
	if err := pinSnapshot(); err != nil {
		return fail(err)
	}

	// --- Mid-append Map/Reduce job: input pinned at submit. ---
	hosts := env.cluster.ProviderHosts()
	if len(hosts) > snapAppenders {
		hosts = hosts[:snapAppenders]
	}
	fw, err := mapreduce.NewFramework(mapreduce.FrameworkConfig{
		Net:   env.net,
		Hosts: hosts,
		Mount: func(host string) dfs.FileSystem { return env.deploy.Mount(host) },
	})
	if err != nil {
		return fail(err)
	}
	defer fw.Close()
	sum := func(key string, values []string, emit func(k, v string)) {
		emit(key, fmt.Sprint(len(values)))
	}
	job, err := fw.Run(ctx, mapreduce.JobConf{
		Name:      "snapshot-linecount",
		Input:     []string{path},
		OutputDir: "/snap/out",
		// The first record read proves the job pinned its input and is
		// consuming it; releasing the appenders here makes phase 2
		// overlap the job deterministically.
		Map: func(_, _ string, emit func(k, v string)) {
			release()
			emit("lines", "1")
		},
		Combine:     sum,
		Reduce:      sum,
		NumReducers: 1,
	})
	release() // belt and braces: never leave the appenders parked
	if err != nil {
		return fail(fmt.Errorf("mid-append job: %w", err))
	}
	res.PinnedVersion = job.InputVersions[path]
	res.JobInputBytes = job.InputBytes
	res.JobRecords = job.MapInputRecords
	if res.PinnedVersion == 0 {
		return fail(errors.New("mid-append job did not pin its input version"))
	}
	// The pinned snapshot's own size is the ground truth the job must
	// have covered — resolvable from history because the held fixed
	// pins keep the collection frontier below it.
	infos, err := fs.Versions(ctx, path)
	if err != nil {
		return fail(err)
	}
	for _, vi := range infos {
		if vi.Version == res.PinnedVersion {
			res.PinnedSize = vi.Size
		}
	}
	if res.PinnedSize == 0 {
		return fail(fmt.Errorf("pinned version %d missing from history", res.PinnedVersion))
	}
	if res.JobInputBytes != res.PinnedSize {
		return fail(fmt.Errorf("job covered %d bytes, pinned snapshot has %d", res.JobInputBytes, res.PinnedSize))
	}
	if want := res.PinnedSize / snapLineBytes; res.JobRecords != want {
		return fail(fmt.Errorf("job read %d records, pinned snapshot holds %d", res.JobRecords, want))
	}

	// Verify the fixed snapshots while appends continue, pin another,
	// then drain the appenders.
	if err := verifyFixed(); err != nil {
		return fail(err)
	}
	if err := pinSnapshot(); err != nil {
		return fail(err)
	}
	wg.Wait()
	close(appErr)
	for err := range appErr {
		return fail(err)
	}
	tailStop()
	if err := <-tailDone; err != nil {
		return nil, err
	}

	// A GC pass with every fixed pin still held: nothing a fixed
	// reader serves may be reclaimed, so every snapshot must still
	// verify byte-identical afterwards.
	if _, err := env.deploy.GC.RunOnce(ctx); err != nil {
		return nil, err
	}
	if err := verifyFixed(); err != nil {
		return nil, err
	}
	res.FixedSnapshots = len(fixed)
	oldest := fixed[0].ver

	fi, err := fs.Stat(ctx, path)
	if err != nil {
		return nil, err
	}
	res.FinalSize = fi.Size
	if res.FinalSize <= res.PinnedSize {
		return nil, fmt.Errorf("file did not grow past the pinned snapshot: %d <= %d", res.FinalSize, res.PinnedSize)
	}

	// Release the pins: the next pass collects history down to the
	// retention window, and the collected snapshot answers with the
	// stable sentinel.
	closeFixed()
	before := env.deploy.GC.Stats().Snapshot().VersionsCollected
	if _, err := env.deploy.GC.RunOnce(ctx); err != nil {
		return nil, err
	}
	res.VersionsCollected = env.deploy.GC.Stats().Snapshot().VersionsCollected - before
	infos, err = fs.Versions(ctx, path)
	if err != nil {
		return nil, err
	}
	res.VersionsListed = len(infos)
	if _, err := fs.OpenVersion(ctx, path, oldest); errors.Is(err, dfs.ErrVersionGone) {
		res.GoneAfterGC = true
	} else if err == nil {
		return nil, fmt.Errorf("snapshot %d still readable after unpinned GC pass", oldest)
	} else {
		return nil, fmt.Errorf("snapshot %d after GC: got %v, want dfs.ErrVersionGone", oldest, err)
	}
	return res, nil
}

// snapMountType pins the compile-time assumption that experiment
// mounts expose the full versioned capability.
var _ dfs.VersionedFileSystem = (*bsfs.FS)(nil)
