package experiments

import (
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/transport"
)

func TestMetaScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("meta scenario runs a shaped multi-second workload")
	}
	res, err := Meta(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaling) != metaShardSweep {
		t.Fatalf("scaling points = %d, want %d", len(res.Scaling), metaShardSweep)
	}
	for _, p := range res.Scaling {
		if p.OpsPerSec <= 0 {
			t.Fatalf("shards=%d: ops/s = %g", p.Shards, p.OpsPerSec)
		}
	}
	// Publish throughput must grow with shard count. Observed margins
	// are ~1.7x and ~1.6x; the thresholds are generous so shaping noise
	// on loaded CI hosts does not flake, but flat curves still fail.
	p1, p2, p4 := res.Scaling[0].OpsPerSec, res.Scaling[1].OpsPerSec, res.Scaling[2].OpsPerSec
	if p2 < p1*1.15 {
		t.Errorf("2 shards did not scale: %.0f -> %.0f ops/s", p1, p2)
	}
	if p4 < p2*1.05 {
		t.Errorf("4 shards did not scale past 2: %.0f -> %.0f ops/s", p2, p4)
	}

	// Failover: every acknowledged write survived the kill.
	f := res.Failover
	if f.LostWrites != 0 {
		t.Errorf("failover lost %d acknowledged writes", f.LostWrites)
	}
	if want := failWriters * (failOpsBefore + failOpsAfter); f.AckedTotal != want {
		t.Errorf("failover acked %d writes, want %d", f.AckedTotal, want)
	}
	if want := failWriters * failOpsAfter; f.ResumedAfter != want {
		t.Errorf("%d writes acked after the kill, want %d", f.ResumedAfter, want)
	}

	// Cold restart replayed real journal state.
	r := res.Recovery
	if r.Records == 0 || r.Blobs == 0 || r.Versions == 0 {
		t.Errorf("recovery replayed nothing: %+v", r)
	}
}

// BenchmarkMetaPublish measures the raw publish pipeline (append +
// wait-published + two reads of the version metadata) on an unshaped
// in-memory cluster with two shards — the ops/s ceiling of the
// metadata plane itself, with no modeled network in the way.
func BenchmarkMetaPublish(b *testing.B) {
	cluster, err := blob.NewCluster(transport.NewMemNet(), blob.ClusterConfig{
		Providers:     8,
		MetaProviders: 3,
		VMShards:      2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	c := cluster.Client("bench-cli")
	defer c.Close()
	bl, err := c.Create(ctx, metaPageSize)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metaOp(c, bl, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
