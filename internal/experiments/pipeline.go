package experiments

import (
	"fmt"
	"time"

	"blobseer/internal/apps/datajoin"
	"blobseer/internal/apps/grep"
	"blobseer/internal/dfs"
	"blobseer/internal/mapreduce"
	"blobseer/internal/workload"
)

// PipelineResult compares sequential stage execution with the paper's
// §5 pipelined execution, where "the reducers generate the data and
// append it to a file that is at the same time, read and processed by
// the mappers" of the next stage.
type PipelineResult struct {
	SequentialSec float64
	PipelinedSec  float64
	Speedup       float64
}

// Pipeline runs a two-stage chain — data join, then grep over the join
// output — both sequentially and pipelined on BSFS.
func Pipeline(cfg Config) (*PipelineResult, error) {
	cfg = cfg.withDefaults()

	targetLines := int(3 * cfg.PageSize / 45)
	keys := targetLines / 8
	if keys < 8 {
		keys = 8
	}
	contentA, contentB := workload.JoinInputs(workload.JoinConfig{Keys: keys, Seed: cfg.Seed})

	stage1 := func(out string) mapreduce.JobConf {
		job := datajoin.Job("/in/a", "/in/b", out, 4, mapreduce.SharedAppend)
		job.MapCostPerRecord = 100 * time.Microsecond
		// A long reduce phase is the overlap window: stage 2's mappers
		// chew through the join output while it is still growing.
		job.ReduceCostPerRecord = 20 * time.Microsecond
		job.Shuffle = cfg.Shuffle
		return job
	}
	stage2 := func(in []string, out string) mapreduce.JobConf {
		job := grep.Job(in, out, "radiohead", 2, mapreduce.SharedAppend)
		job.Shuffle = cfg.Shuffle
		// Stage 2 is map-heavy and split finely: its mappers are the
		// consumers that pipelined mode lets run while stage 1's
		// reducers still append. With one map slot per tracker the map
		// phase takes several waves — the regime (splits >> slots)
		// where overlapping pays, as in a loaded production cluster.
		job.MapCostPerRecord = 500 * time.Microsecond
		job.SplitSize = 32 << 10
		return job
	}

	run := func(pipelined bool) (float64, error) {
		// A capped tracker pool with one map slot each puts stage 2's
		// map phase in the multi-wave regime where overlapping with
		// stage 1's reduce phase actually saves wall time.
		fw, clientFS, cleanup, err := newFramework(cfg, "bsfs", 1, 2, 24)
		if err != nil {
			return 0, err
		}
		defer cleanup()
		if err := dfs.WriteFile(ctx, clientFS, "/in/a", []byte(contentA)); err != nil {
			return 0, err
		}
		if err := dfs.WriteFile(ctx, clientFS, "/in/b", []byte(contentB)); err != nil {
			return 0, err
		}
		start := time.Now()
		if pipelined {
			_, err = fw.RunPipeline(ctx, []mapreduce.JobConf{
				stage1("/s1"),
				stage2(nil, "/s2"),
			})
		} else {
			if _, err = fw.Run(ctx, stage1("/s1")); err == nil {
				_, err = fw.Run(ctx, stage2([]string{"/s1/" + mapreduce.SharedOutputName}, "/s2"))
			}
		}
		if err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}

	seq, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("pipeline sequential: %w", err)
	}
	pipe, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("pipeline overlapped: %w", err)
	}
	return &PipelineResult{
		SequentialSec: seq,
		PipelinedSec:  pipe,
		Speedup:       seq / pipe,
	}, nil
}
