package experiments

import (
	"strings"
	"testing"

	"blobseer/internal/metrics"
)

func twinReports() (*BenchReport, *BenchReport) {
	mk := func() *BenchReport {
		return &BenchReport{
			Fig:    "write",
			Config: BenchConfig{Nodes: 64, MetaProviders: 8, PageSize: 256 << 10, BandwidthMBps: 12.5, Reps: 2},
			Series: []BenchSeries{{
				Name: "BSFS append throughput", XLabel: "clients", YLabel: "MB/s",
				Points: []BenchPoint{{X: 1, Y: 10}, {X: 8, Y: 80}},
			}},
			Latency: map[string]metrics.LatencyQuantiles{
				"blob.append": {Count: 100, P50Ms: 4, P99Ms: 12},
			},
			Extra: map[string]float64{"precision_top10": 1.0},
		}
	}
	return mk(), mk()
}

func TestCompareBenchWithinBand(t *testing.T) {
	base, cur := twinReports()
	cur.Series[0].Points[1].Y = 88 // +10%: inside the 25% band
	drifts := CompareBench(base, cur, 0)
	if len(drifts) == 0 {
		t.Fatal("no metrics compared")
	}
	for _, d := range drifts {
		if d.Over {
			t.Errorf("drift flagged inside the band: %+v", d)
		}
	}
	out := FormatDrift(drifts, 0, false)
	if !strings.Contains(out, "all within") {
		t.Errorf("clean comparison output = %q", out)
	}
}

func TestCompareBenchFlagsDrift(t *testing.T) {
	base, cur := twinReports()
	cur.Series[0].Points[1].Y = 40                                                         // -50% throughput
	cur.Latency["blob.append"] = metrics.LatencyQuantiles{Count: 100, P50Ms: 4, P99Ms: 30} // p99 2.5x
	drifts := CompareBench(base, cur, 25)
	over := make(map[string]float64)
	for _, d := range drifts {
		if d.Over {
			over[d.Metric] = d.DeltaPct
		}
	}
	if len(over) != 2 {
		t.Fatalf("flagged drifts = %v", over)
	}
	if pct := over["series/BSFS append throughput @ clients=8"]; pct > -49 || pct < -51 {
		t.Errorf("throughput drift = %v, want ~-50", pct)
	}
	if pct := over["latency/blob.append/p99_ms"]; pct < 149 || pct > 151 {
		t.Errorf("latency drift = %v, want ~+150", pct)
	}

	out := FormatDrift(drifts, 25, true)
	if !strings.Contains(out, "::warning title=bench drift::") {
		t.Errorf("no GitHub annotation in %q", out)
	}
	if !strings.Contains(out, "drifted -50.0%") {
		t.Errorf("drift line missing from %q", out)
	}
}

func TestCompareBenchConfigMismatch(t *testing.T) {
	base, cur := twinReports()
	cur.Config.Nodes = 270
	drifts := CompareBench(base, cur, 0)
	if len(drifts) != 1 || drifts[0].Metric != "config" || !drifts[0].Over {
		t.Fatalf("config mismatch drifts = %+v", drifts)
	}
	if out := FormatDrift(drifts, 0, false); !strings.Contains(out, "not comparable") {
		t.Errorf("mismatch output = %q", out)
	}
}

func TestCompareBenchSkipsUnmatched(t *testing.T) {
	base, cur := twinReports()
	base.Series = append(base.Series, BenchSeries{Name: "old curve", Points: []BenchPoint{{X: 1, Y: 1}}})
	cur.Extra["new_scalar"] = 5
	base.Extra["zero_scalar"], cur.Extra["zero_scalar"] = 0, 3 // no relative scale
	for _, d := range CompareBench(base, cur, 0) {
		if strings.Contains(d.Metric, "old curve") || strings.Contains(d.Metric, "new_scalar") || strings.Contains(d.Metric, "zero_scalar") {
			t.Errorf("unmatchable metric compared: %+v", d)
		}
	}
}

func TestLoadBenchRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadBench(dir + "/missing.json"); err == nil {
		t.Error("missing file loaded")
	}
}
