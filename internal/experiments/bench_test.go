package experiments

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"blobseer/internal/metrics"
)

// TestBenchWriteReportJSON is the bench-trajectory acceptance test:
// a scenario run must produce a BENCH_<fig>.json that parses and
// carries both the figure series and real latency percentiles.
func TestBenchWriteReportJSON(t *testing.T) {
	rep, series, err := BenchWrite(smallCfg(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if series == nil || len(series.Points) != 2 {
		t.Fatalf("series = %+v", series)
	}

	dir := t.TempDir()
	path, err := WriteBench(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "BENCH_write.json") {
		t.Errorf("path = %s", path)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got BenchReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if got.Fig != "write" {
		t.Errorf("fig = %q", got.Fig)
	}
	if got.Config.Nodes != 24 || got.Config.PageSize != 64<<10 {
		t.Errorf("config = %+v", got.Config)
	}
	if len(got.Series) != 1 || len(got.Series[0].Points) != 2 {
		t.Fatalf("series in report = %+v", got.Series)
	}
	for _, p := range got.Series[0].Points {
		if p.Y <= 0 {
			t.Errorf("throughput point %+v", p)
		}
	}

	// The latency block must hold the append percentiles the scenario's
	// own traffic recorded: count > 0 and ordered quantiles.
	lat, ok := got.Latency["blob.append"]
	if !ok {
		t.Fatalf("no blob.append latency in report: %v", got.Latency)
	}
	if lat.Count == 0 || lat.P50Ms <= 0 {
		t.Errorf("append latency = %+v", lat)
	}
	if lat.P50Ms > lat.P99Ms || lat.P99Ms > lat.P999Ms || lat.P999Ms > lat.MaxMs {
		t.Errorf("quantiles out of order: %+v", lat)
	}
}

// TestBenchRunBrackets pins the delta semantics: latencies() reports
// only what was recorded after startBenchRun, so reports stay accurate
// when several scenarios share one process.
func TestBenchRunBrackets(t *testing.T) {
	metrics.Default.Op("bench.test.op").Record(1_000_000)
	run := startBenchRun("bench.test.op", "bench.test.unused")
	metrics.Default.Op("bench.test.op").Record(2_000_000)
	lat := run.latencies()
	if got := lat["bench.test.op"].Count; got != 1 {
		t.Errorf("bracketed count = %d, want 1 (pre-existing sample leaked in)", got)
	}
	if _, ok := lat["bench.test.unused"]; ok {
		t.Error("idle op reported")
	}
}

func TestTraceAppendTree(t *testing.T) {
	tree, err := TraceAppend(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance shape: one sampled append rendered as a causal
	// tree crossing client -> version manager -> provider.
	for _, want := range []string{
		"append.sample",
		"blob.append",
		"write.pages",
		"rpc:vm.Assign",
		"serve:vm.Assign",
		"rpc:prov.PutPage",
		"serve:prov.PutPage",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("trace tree missing %q:\n%s", want, tree)
		}
	}
}
