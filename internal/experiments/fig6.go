package experiments

import (
	"fmt"
	"time"

	"blobseer/internal/apps/datajoin"
	"blobseer/internal/blob"
	"blobseer/internal/dfs"
	"blobseer/internal/mapreduce"
	"blobseer/internal/metrics"
	"blobseer/internal/workload"
)

// Fig6Result carries the data-join comparison of §4.3: completion time
// versus reducer count for original-Hadoop-on-HDFS (one output file
// per reducer) and modified-Hadoop-on-BSFS (single shared appended
// file), plus the derived file-count table (Tab A in DESIGN.md).
type Fig6Result struct {
	HDFS *metrics.Series // completion time (s)
	BSFS *metrics.Series

	FilesHDFS *metrics.Series // committed output files
	FilesBSFS *metrics.Series

	MetaHDFS *metrics.Series // centralized metadata entries after the run
	MetaBSFS *metrics.Series
}

// fig6Costs models the data join being "a computation-intensive
// application [where] most of the time is spent on searching and
// matching keys in the map phase, and on combining key-value pairs in
// the reduce phase" (§4.3) — which is why completion time stays flat
// in the reducer count and equal across file systems.
const (
	fig6MapCost    = 300 * time.Microsecond
	fig6ReduceCost = 1 * time.Microsecond
)

// Fig6 reproduces Figure 6: "Completion time of the data join
// application when varying the number of reducers".
func Fig6(cfg Config, reducers []int) (*Fig6Result, error) {
	cfg = cfg.withDefaults()

	// Two input files of ~5 chunks each, so "10 concurrent mappers
	// will perform the map phase" like the paper; the join output is
	// ~10x the input.
	targetLines := int(5 * cfg.PageSize / 45)
	keys := targetLines / 8
	if keys < 8 {
		keys = 8
	}
	contentA, contentB := workload.JoinInputs(workload.JoinConfig{Keys: keys, Seed: cfg.Seed})

	res := &Fig6Result{
		HDFS:      &metrics.Series{Name: "HDFS - multiple output files", XLabel: "reducers", YLabel: "time (s)"},
		BSFS:      &metrics.Series{Name: "BSFS - single output file", XLabel: "reducers", YLabel: "time (s)"},
		FilesHDFS: &metrics.Series{Name: "HDFS output files", XLabel: "reducers", YLabel: "files"},
		FilesBSFS: &metrics.Series{Name: "BSFS output files", XLabel: "reducers", YLabel: "files"},
		MetaHDFS:  &metrics.Series{Name: "HDFS namenode entries", XLabel: "reducers", YLabel: "entries"},
		MetaBSFS:  &metrics.Series{Name: "BSFS namespace entries", XLabel: "reducers", YLabel: "entries"},
	}

	if err := fig6System(cfg, "hdfs", contentA, contentB, reducers, res.HDFS, res.FilesHDFS, res.MetaHDFS); err != nil {
		return nil, err
	}
	if err := fig6System(cfg, "bsfs", contentA, contentB, reducers, res.BSFS, res.FilesBSFS, res.MetaBSFS); err != nil {
		return nil, err
	}
	return res, nil
}

// fig6System runs the sweep on one backend.
func fig6System(cfg Config, system, contentA, contentB string, reducers []int, timeS, filesS, metaS *metrics.Series) error {
	fw, clientFS, cleanup, err := newFramework(cfg, system, 0, 0, 0)
	if err != nil {
		return err
	}
	defer cleanup()

	if err := dfs.WriteFile(ctx, clientFS, "/in/lastfm-a", []byte(contentA)); err != nil {
		return err
	}
	if err := dfs.WriteFile(ctx, clientFS, "/in/lastfm-b", []byte(contentB)); err != nil {
		return err
	}

	mode := mapreduce.SeparateFiles
	if system == "bsfs" {
		// The modified framework: reducers append to one shared file.
		mode = mapreduce.SharedAppend
	}
	for _, r := range reducers {
		job := datajoin.Job("/in/lastfm-a", "/in/lastfm-b", fmt.Sprintf("/out/%s-r%03d", system, r), r, mode)
		job.MapCostPerRecord = fig6MapCost
		job.ReduceCostPerRecord = fig6ReduceCost
		if system == "bsfs" {
			// The blob shuffle backend needs BlobSeer underneath; HDFS
			// keeps the classic in-tracker shuffle.
			job.Shuffle = cfg.Shuffle
		}
		result, err := fw.Run(ctx, job)
		if err != nil {
			return fmt.Errorf("fig6 %s r=%d: %w", system, r, err)
		}
		timeS.Add(float64(r), result.Duration.Seconds(), 0)
		filesS.Add(float64(r), float64(len(result.OutputFiles)), 0)
		entries, err := clientFS.MetadataEntries(ctx)
		if err != nil {
			return err
		}
		metaS.Add(float64(r), float64(entries), 0)
	}
	return nil
}

// newFramework boots a shaped storage deployment of cfg's scale plus a
// Map/Reduce framework with tasktrackers co-deployed on storage nodes
// ("the tasktrackers were co-deployed with the datanodes", §4.3).
// mapSlots/reduceSlots of 0 use the Hadoop defaults (2 and 2);
// maxHosts > 0 caps the tasktracker pool (a loaded-cluster regime).
func newFramework(cfg Config, system string, mapSlots, reduceSlots, maxHosts int) (*mapreduce.Framework, dfs.FileSystem, func(), error) {
	capHosts := func(hosts []string) []string {
		if maxHosts > 0 && len(hosts) > maxHosts {
			return hosts[:maxHosts]
		}
		return hosts
	}
	switch system {
	case "bsfs":
		env, err := newBSFSEnvStore(cfg, blob.StoreMemory)
		if err != nil {
			return nil, nil, nil, err
		}
		fw, err := mapreduce.NewFramework(mapreduce.FrameworkConfig{
			Net:         env.net,
			Hosts:       capHosts(env.cluster.ProviderHosts()),
			Mount:       func(host string) dfs.FileSystem { return env.deploy.Mount(host) },
			MapSlots:    mapSlots,
			ReduceSlots: reduceSlots,
		})
		if err != nil {
			env.Close()
			return nil, nil, nil, err
		}
		cleanup := func() {
			fw.Close()
			env.Close()
		}
		return fw, fw.ClientFS(), cleanup, nil

	case "hdfs":
		env, err := newHDFSEnv(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		fw, err := mapreduce.NewFramework(mapreduce.FrameworkConfig{
			Net:         env.net,
			Hosts:       capHosts(env.cluster.DatanodeHosts()),
			Mount:       func(host string) dfs.FileSystem { return env.cluster.Mount(host, cfg.PageSize) },
			MapSlots:    mapSlots,
			ReduceSlots: reduceSlots,
		})
		if err != nil {
			env.Close()
			return nil, nil, nil, err
		}
		cleanup := func() {
			fw.Close()
			env.Close()
		}
		return fw, fw.ClientFS(), cleanup, nil

	default:
		return nil, nil, nil, fmt.Errorf("experiments: unknown system %q", system)
	}
}
