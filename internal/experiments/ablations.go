package experiments

import (
	"fmt"
	"sync"

	"blobseer/internal/blob"
	"blobseer/internal/dfs"
	"blobseer/internal/metrics"
)

// AblationPlacement compares provider-allocation strategies on the
// Figure 3 workload (Abl 2 in DESIGN.md): round-robin spreads pages
// perfectly, random suffers balls-into-bins hotspots, least-loaded
// sits between.
func AblationPlacement(cfg Config, clients []int) ([]*metrics.Series, error) {
	cfg = cfg.withDefaults()
	strategies := []blob.Strategy{
		&blob.RoundRobin{},
		blob.NewRandomK(cfg.Seed + 1),
		&blob.LeastLoaded{},
	}
	var out []*metrics.Series
	for _, s := range strategies {
		c := cfg
		c.Placement = s
		series, err := Fig3(c, clients)
		if err != nil {
			return nil, fmt.Errorf("placement %s: %w", s.Name(), err)
		}
		series.Name = s.Name()
		out = append(out, series)
	}
	return out, nil
}

// AblationPageSize sweeps the page/chunk size on the Figure 3 workload
// at a fixed client count (Abl 3): larger pages amortize the fixed
// per-append costs (version assignment, metadata commit).
func AblationPageSize(cfg Config, sizes []uint64, n int) (*metrics.Series, error) {
	cfg = cfg.withDefaults()
	series := &metrics.Series{
		Name:   fmt.Sprintf("append, %d clients", n),
		XLabel: "page size (KiB)",
		YLabel: "avg throughput (MB/s)",
	}
	for _, size := range sizes {
		c := cfg
		c.PageSize = size
		env, err := newBSFSEnv(c)
		if err != nil {
			return nil, err
		}
		sum, err := fig3Point(env, c, 0, n)
		env.Close()
		if err != nil {
			return nil, fmt.Errorf("page size %d: %w", size, err)
		}
		series.Add(float64(size)/1024, sum.MeanMBps, (sum.P95MBps-sum.P5MBps)/2)
	}
	return series, nil
}

// AblationLockedAppend contrasts BlobSeer's versioning-based
// concurrency control with a global append lock (Abl 1): the lock
// models a lease-based single-writer design (what HDFS appends would
// look like), whose per-client throughput collapses as 1/N while
// versioning degrades only gently.
func AblationLockedAppend(cfg Config, clients []int) (versioned, locked *metrics.Series, err error) {
	cfg = cfg.withDefaults()
	versioned, err = Fig3(cfg, clients)
	if err != nil {
		return nil, nil, err
	}
	versioned.Name = "versioning (BlobSeer)"

	env, err := newBSFSEnv(cfg)
	if err != nil {
		return nil, nil, err
	}
	defer env.Close()
	locked = &metrics.Series{
		Name:   "global append lock",
		XLabel: "clients",
		YLabel: "avg throughput (MB/s)",
	}
	for pi, n := range clients {
		sum, err := lockedPoint(env, cfg, pi, n)
		if err != nil {
			return nil, nil, fmt.Errorf("locked N=%d: %w", n, err)
		}
		locked.Add(float64(n), sum.MeanMBps, (sum.P95MBps-sum.P5MBps)/2)
		env.closeMounts()
	}
	return versioned, locked, nil
}

// lockedPoint is fig3Point with every append serialized by one lock.
func lockedPoint(env *bsfsEnv, cfg Config, point, n int) (metrics.Summary, error) {
	path := freshPath("locked", point)
	setup := env.mount(0)
	if err := dfs.WriteFile(ctx, setup, path, nil); err != nil {
		return metrics.Summary{}, err
	}
	clients := make([]*appendClient, n)
	for i := range clients {
		clients[i] = &appendClient{fs: env.mount(i), path: path, data: chunk(cfg, i)}
	}
	var gate sync.Mutex
	var meter metrics.Meter
	for rep := 0; rep < cfg.Reps; rep++ {
		if err := runAppenders(clients, &meter, &gate); err != nil {
			return metrics.Summary{}, err
		}
	}
	return metrics.Summarize(meter.Samples()), nil
}
