// Package experiments regenerates every figure of the paper's
// evaluation (§4) plus the derived file-count table, the §5 pipeline
// extension, and ablations of the design choices called out in
// DESIGN.md.
//
// The environment reproduces §4.1 at laptop scale: one simulated
// cluster of cfg.Nodes machines on a bandwidth/latency-shaped
// transport; cfg.VMShards version-manager shards (default one, the
// paper's topology), one provider manager, one namespace manager and
// cfg.MetaProviders metadata providers on dedicated
// machines; every remaining machine is a data provider, and clients
// are "launched simultaneously on the same machines as the datanodes
// (data providers, respectively)". Pages/chunks are scaled from the
// paper's 64 MB to cfg.PageSize (default 256 KiB) so a full sweep
// takes seconds, not hours; shapes, not absolute MB/s, are the
// reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/bsfs"
	"blobseer/internal/hdfs"
	"blobseer/internal/shuffle"
	"blobseer/internal/simnet"
	"blobseer/internal/transport"
)

// Config scales an experiment environment.
type Config struct {
	// Nodes is the total machine count (paper: 270).
	Nodes int
	// MetaProviders is the metadata provider count (paper: 20).
	MetaProviders int
	// PageSize is the BlobSeer page = HDFS chunk = append unit
	// ("As HDFS handles data in 64 MB chunks, we also set the page
	// size at the level of BlobSeer to 64 MB", §4.1). Scaled down.
	PageSize uint64
	// Bandwidth models each machine's NIC in bytes/second.
	Bandwidth float64
	// Latency is the one-way per-frame delay.
	Latency time.Duration
	// Reps repeats each measurement ("Each test is executed 5 times").
	Reps int
	// Placement selects the provider-allocation strategy (default
	// random, which models balls-into-bins hotspots; see Abl 2).
	Placement blob.Strategy
	// WriteDepth is the BSFS writer pipeline depth (blocks in flight
	// per writer); 0 means bsfs.DefaultWriteDepth, 1 is the
	// synchronous writer.
	WriteDepth int
	// ReadDepth is the BSFS reader readahead depth (blocks in flight
	// ahead of each sequential reader); 0 means bsfs.DefaultReadDepth,
	// negative disables readahead.
	ReadDepth int
	// CacheBytes budgets each mount's shared page cache. The default
	// (0) DISABLES caching in experiment environments — the figures
	// measure the modeled network, and clients re-reading warm pages
	// from memory would flatten the curves — unlike the library
	// default, which caches. Set explicitly to enable as an ablation.
	CacheBytes int64
	// Shuffle selects the Map/Reduce intermediate-data backend for the
	// application experiments that run on BSFS (Figure 6, the
	// pipeline): memory is the classic in-tracker store, blob stores
	// map outputs as concurrent appends to shared intermediate BLOBs.
	// The dedicated Shuffle scenario compares both regardless.
	Shuffle shuffle.Backend
	// Retain is the version manager's default RetainLatest policy for
	// the environment (0 keeps every version, the paper's model). The
	// dedicated GC scenario sweeps its own policies regardless.
	Retain uint64
	// GCInterval arms periodic garbage-collection passes on the
	// deployment's collector (0 = kick-driven only).
	GCInterval time.Duration
	// VMShards partitions the metadata plane across N version-manager
	// shards (default 1, the paper's single version manager). The Meta
	// scenario sweeps its own shard counts regardless.
	VMShards int
	// JournalDir, when set, journals version-manager and namespace
	// state there so killed services can be restarted (Meta failover).
	JournalDir string
	// Seed drives all randomness.
	Seed int64
}

// withDefaults fills unset fields with the scaled §4.1 topology.
func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 270
	}
	if c.MetaProviders <= 0 {
		c.MetaProviders = 20
	}
	if c.PageSize == 0 {
		c.PageSize = 256 << 10
	}
	if c.Bandwidth == 0 {
		// Modeled NIC: 1/10 of GbE. Together with 256 KiB pages this
		// puts one chunk transfer at ~20 ms, far above the ~1 ms sleep
		// granularity of a shared machine, so shaping error stays in
		// the low percent. Absolute MB/s therefore read ~10x below the
		// paper's GbE testbed; the shapes are the reproduction target.
		c.Bandwidth = 12.5 * (1 << 20)
	}
	if c.Latency == 0 {
		c.Latency = 200 * time.Microsecond
	}
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Placement == nil {
		c.Placement = blob.NewRandomK(c.Seed + 1)
	}
	return c
}

// providers returns the data-provider count implied by the topology:
// total nodes minus version manager, provider manager, namespace
// manager and metadata providers.
func (c Config) providers() int {
	p := c.Nodes - c.MetaProviders - 3
	if p < 1 {
		p = 1
	}
	return p
}

// bsfsEnv is a running shaped BlobSeer+BSFS deployment.
type bsfsEnv struct {
	cfg     Config
	net     *simnet.Net
	cluster *blob.Cluster
	deploy  *bsfs.Deployment

	mu     sync.Mutex
	mounts []*bsfs.FS
}

// newBSFSEnv boots the shaped BSFS environment for throughput
// microbenchmarks (Figures 3-5): page content is irrelevant there, so
// the synthesizing store keeps 270-node runs memory-flat.
func newBSFSEnv(cfg Config) (*bsfsEnv, error) {
	return newBSFSEnvStore(cfg, blob.StoreSynthesize)
}

// newBSFSEnvStore boots the environment with an explicit page-store
// engine. Application experiments (Figure 6, the pipeline) need
// content-retaining storage: the data join matches real keys.
func newBSFSEnvStore(cfg Config, store blob.StoreKind) (*bsfsEnv, error) {
	net := simnet.New(transport.NewMemNet(), simnet.Config{
		Bandwidth:     cfg.Bandwidth,
		Latency:       cfg.Latency,
		FrameOverhead: 64,
	})
	cluster, err := blob.NewCluster(net, blob.ClusterConfig{
		Providers:     cfg.providers(),
		MetaProviders: cfg.MetaProviders,
		Store:         store,
		Strategy:      cfg.Placement,
		Retain:        cfg.Retain,
		VMShards:      cfg.VMShards,
		JournalDir:    cfg.JournalDir,
		NICBandwidth:  cfg.Bandwidth,
	})
	if err != nil {
		return nil, err
	}
	deploy, err := bsfs.Deploy(cluster, cfg.PageSize)
	if err != nil {
		cluster.Close()
		return nil, err
	}
	deploy.WriteDepth = cfg.WriteDepth
	deploy.ReadDepth = cfg.ReadDepth
	deploy.CacheBytes = cfg.CacheBytes
	if cfg.CacheBytes == 0 {
		deploy.CacheBytes = -1 // measure the network, not the cache
	}
	if cfg.GCInterval > 0 {
		deploy.SetGCInterval(cfg.GCInterval)
	}
	return &bsfsEnv{cfg: cfg, net: net, cluster: cluster, deploy: deploy}, nil
}

// mount returns a BSFS mount co-located with provider i (mod the
// provider count), like the paper's clients.
func (e *bsfsEnv) mount(i int) *bsfs.FS {
	hosts := e.cluster.ProviderHosts()
	fs := e.deploy.Mount(hosts[i%len(hosts)])
	e.mu.Lock()
	e.mounts = append(e.mounts, fs)
	e.mu.Unlock()
	return fs
}

// closeMounts releases client mounts between sweep points.
func (e *bsfsEnv) closeMounts() {
	e.mu.Lock()
	mounts := e.mounts
	e.mounts = nil
	e.mu.Unlock()
	for _, m := range mounts {
		m.Close()
	}
}

// Close tears the environment down.
func (e *bsfsEnv) Close() {
	e.closeMounts()
	e.deploy.Close()
	e.cluster.Close()
}

// hdfsEnv is a running shaped HDFS deployment of the same scale.
type hdfsEnv struct {
	cfg     Config
	net     *simnet.Net
	cluster *hdfs.Cluster

	mu     sync.Mutex
	mounts []*hdfs.FS
}

// newHDFSEnv boots the shaped HDFS environment: a dedicated namenode
// machine and datanodes on the remaining nodes (§4.1). Blocks retain
// content (HDFS only appears in application experiments).
func newHDFSEnv(cfg Config) (*hdfsEnv, error) {
	net := simnet.New(transport.NewMemNet(), simnet.Config{
		Bandwidth:     cfg.Bandwidth,
		Latency:       cfg.Latency,
		FrameOverhead: 64,
	})
	cluster, err := hdfs.NewCluster(net, hdfs.ClusterConfig{
		Datanodes: cfg.Nodes - 1,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &hdfsEnv{cfg: cfg, net: net, cluster: cluster}, nil
}

func (e *hdfsEnv) mount(i int) *hdfs.FS {
	hosts := e.cluster.DatanodeHosts()
	fs := e.cluster.Mount(hosts[i%len(hosts)], e.cfg.PageSize)
	e.mu.Lock()
	e.mounts = append(e.mounts, fs)
	e.mu.Unlock()
	return fs
}

func (e *hdfsEnv) closeMounts() {
	e.mu.Lock()
	mounts := e.mounts
	e.mounts = nil
	e.mu.Unlock()
	for _, m := range mounts {
		m.Close()
	}
}

func (e *hdfsEnv) Close() {
	e.closeMounts()
	e.cluster.Close()
}

// chunk builds one deterministic chunk (= page) of payload.
func chunk(cfg Config, tag int) []byte {
	buf := make([]byte, cfg.PageSize)
	x := uint64(tag)*2654435761 + 12345
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
	return buf
}

// freshPath returns a unique file path for a sweep point.
func freshPath(kind string, point int) string {
	return fmt.Sprintf("/bench/%s/point-%03d", kind, point)
}

//lint:detached the bench harness root ctx: experiment runs own their whole process lifetime, there is no caller to thread from
var ctx = context.Background()
