package experiments

import (
	"fmt"
	"sync"
	"time"

	"blobseer/internal/dfs"
	"blobseer/internal/metrics"
)

// Fig3 reproduces Figure 3: "Performance of BSFS when concurrent
// clients append data to the same file". For each N in clients, N
// co-located clients each append one chunk to the same shared file,
// cfg.Reps times; the point is the mean per-client append throughput.
func Fig3(cfg Config, clients []int) (*metrics.Series, error) {
	cfg = cfg.withDefaults()
	env, err := newBSFSEnv(cfg)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	series := &metrics.Series{
		Name:   "BSFS append",
		XLabel: "clients",
		YLabel: "avg throughput (MB/s)",
	}
	for pi, n := range clients {
		sum, err := fig3Point(env, cfg, pi, n)
		if err != nil {
			return nil, fmt.Errorf("fig3 N=%d: %w", n, err)
		}
		series.Add(float64(n), sum.MeanMBps, (sum.P95MBps-sum.P5MBps)/2)
		env.closeMounts()
	}
	return series, nil
}

// fig3Point measures one sweep point: n concurrent appenders, one
// chunk each, cfg.Reps repetitions on a fresh file.
func fig3Point(env *bsfsEnv, cfg Config, point, n int) (metrics.Summary, error) {
	path := freshPath("fig3", point)
	setup := env.mount(0)
	if err := dfs.WriteFile(ctx, setup, path, nil); err != nil {
		return metrics.Summary{}, err
	}

	mounts := make([]*appendClient, n)
	for i := range mounts {
		mounts[i] = &appendClient{fs: env.mount(i), path: path, data: chunk(cfg, i)}
	}

	var meter metrics.Meter
	for rep := 0; rep < cfg.Reps; rep++ {
		if err := runAppenders(mounts, &meter, nil); err != nil {
			return metrics.Summary{}, err
		}
	}
	return metrics.Summarize(meter.Samples()), nil
}

// appendClient is one benchmark appender bound to a mount.
type appendClient struct {
	fs   dfs.FileSystem
	path string
	data []byte
}

// runAppenders starts every client simultaneously; each appends its
// chunk once (timed: Write plus a pipeline drain, i.e. until the
// version manager acknowledges completion) and then closes (untimed
// publish wait). A non-nil gate serializes appends — the global-lock
// ablation.
func runAppenders(clients []*appendClient, meter *metrics.Meter, gate *sync.Mutex) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(clients))
	start := make(chan struct{})
	for _, c := range clients {
		wg.Add(1)
		go func(c *appendClient) {
			defer wg.Done()
			w, err := c.fs.Append(ctx, c.path)
			if err != nil {
				errs <- err
				return
			}
			<-start
			// The timed section includes lock wait when a gate is set:
			// queueing delay IS the cost of a serialized design.
			t0 := time.Now()
			if gate != nil {
				gate.Lock()
			}
			_, werr := w.Write(c.data) // exactly one block: one append
			if werr == nil {
				if f, ok := w.(dfs.Flusher); ok {
					// Drain the writer pipeline so the timed section
					// still ends at completion acknowledgement.
					werr = f.Flush()
				}
			}
			if gate != nil {
				gate.Unlock()
			}
			d := time.Since(t0)
			if werr != nil {
				errs <- werr
				w.Close()
				return
			}
			meter.Record(uint64(len(c.data)), d)
			if err := w.Close(); err != nil {
				errs <- err
			}
		}(c)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}
