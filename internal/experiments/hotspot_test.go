package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotspotSketchPrecision is the tentpole acceptance test: a
// Zipf-skewed read workload over twice as many pages as the heat
// sketch tracks, scored against exact ground truth. The sketch's
// top-10 must hit precision >= 0.9, the read load must be visibly
// imbalanced, and the provider the monitor ranks hottest must actually
// hold a hot page.
func TestHotspotSketchPrecision(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second shaped workload")
	}
	res, series, err := Hotspot(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision < 0.9 {
		t.Errorf("sketch top-10 precision = %.2f, want >= 0.9\ntrue  %v\nsketch %v",
			res.Precision, res.TrueTop, res.SketchTop)
	}
	if res.ReplicaImbalance <= 1 {
		t.Errorf("replica imbalance = %.2f, want > 1 under a Zipf hot set", res.ReplicaImbalance)
	}
	if !res.HotProviderIsHolder {
		t.Errorf("hottest provider %q holds no true top-10 page", res.HotProvider)
	}
	if res.MaxUtilization <= 0 {
		t.Errorf("max utilization = %v, want > 0 with a modeled NIC", res.MaxUtilization)
	}
	if len(series) != 2 || len(series[0].Points) == 0 || len(series[1].Points) == 0 {
		t.Fatalf("series = %+v", series)
	}
}

// TestBenchHotspotReport checks the BENCH_hotspot.json artifact shape.
func TestBenchHotspotReport(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second shaped workload")
	}
	rep, res, _, err := BenchHotspot(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fig != "hotspot" {
		t.Errorf("fig = %q", rep.Fig)
	}
	if rep.Extra["precision_top10"] != res.Precision {
		t.Errorf("extra precision = %v, result %v", rep.Extra["precision_top10"], res.Precision)
	}
	dir := t.TempDir()
	path, err := WriteBench(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "BENCH_hotspot.json") {
		t.Errorf("path = %s", path)
	}
	back, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Extra["precision_top10"] != res.Precision {
		t.Errorf("round-trip precision = %v", back.Extra["precision_top10"])
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_hotspot.json")); err != nil {
		t.Fatal(err)
	}
}
