package experiments

import (
	"fmt"
	"sync"
	"time"

	"blobseer/internal/bsfs"
	"blobseer/internal/dfs"
	"blobseer/internal/metrics"
)

// Figures 4 and 5 share one scenario (§4.2): a shared file, a fixed
// group of one kind of client, a swept group of the other kind, and
// the mean per-operation throughput of the measured group. Readers
// process 10 chunks each from disjoint regions of the preloaded file;
// appenders append their chunks at the tail. Versioning isolates the
// two completely — that is the claim the figures support.

const (
	chunksPerReader   = 10
	chunksPerAppender = 16 // Fig 4 (§4.2: appenders write 16 chunks)
	fixedReaders      = 100
	fixedAppenders    = 100
)

// Fig4 reproduces Figure 4: "Impact of concurrent appends on
// concurrent reads from the same file" — 100 readers, 0..N appenders,
// reporting read throughput.
func Fig4(cfg Config, appenders []int) (*metrics.Series, error) {
	cfg = cfg.withDefaults()
	series := &metrics.Series{
		Name:   "BSFS read",
		XLabel: "appenders",
		YLabel: "read avg throughput (MB/s)",
	}
	err := runMixed(cfg, "fig4", appenders, func(point, x int) (readers, appenders, appChunks int) {
		return fixedReaders, x, chunksPerAppender
	}, func(readSum, appendSum metrics.Summary, x int) {
		series.Add(float64(x), readSum.MeanMBps, (readSum.P95MBps-readSum.P5MBps)/2)
	})
	return series, err
}

// Fig5 reproduces Figure 5: "Impact of concurrent reads on concurrent
// appends to the same file" — 100 appenders (10 chunks each, like the
// readers, per §4.2), 0..N readers, reporting append throughput.
func Fig5(cfg Config, readers []int) (*metrics.Series, error) {
	cfg = cfg.withDefaults()
	series := &metrics.Series{
		Name:   "BSFS append",
		XLabel: "readers",
		YLabel: "append avg throughput (MB/s)",
	}
	err := runMixed(cfg, "fig5", readers, func(point, x int) (r, a, appChunks int) {
		return x, fixedAppenders, chunksPerReader
	}, func(readSum, appendSum metrics.Summary, x int) {
		series.Add(float64(x), appendSum.MeanMBps, (appendSum.P95MBps-appendSum.P5MBps)/2)
	})
	return series, err
}

// runMixed drives the shared readers+appenders scenario across sweep
// points. shape maps a sweep value to (readers, appenders, chunks per
// appender); report receives the two summaries per point.
func runMixed(cfg Config, kind string, xs []int, shape func(point, x int) (int, int, int), report func(r, a metrics.Summary, x int)) error {
	env, err := newBSFSEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()

	// Shared file, preloaded once so every reader has its disjoint
	// 10-chunk region ("Each client processes disjoint regions of the
	// file", §4.2).
	path := "/bench/" + kind + "/shared"
	if err := preload(env, cfg, path, fixedReaders*chunksPerReader); err != nil {
		return fmt.Errorf("%s preload: %w", kind, err)
	}

	// Mounts are created once and reused across points so client-side
	// history caches stay warm (fresh mounts would re-fetch the whole
	// write history and skew late points).
	maxR, maxA := 0, 0
	for pi, x := range xs {
		r, a, _ := shape(pi, x)
		if r > maxR {
			maxR = r
		}
		if a > maxA {
			maxA = a
		}
	}
	readerMounts := make([]*bsfs.FS, maxR)
	for i := range readerMounts {
		readerMounts[i] = env.mount(i)
	}
	appenderMounts := make([]*appendClient, maxA)
	for i := range appenderMounts {
		appenderMounts[i] = &appendClient{
			fs:   env.mount(maxR + i),
			path: path,
			data: chunk(cfg, i),
		}
	}

	for pi, x := range xs {
		nR, nA, appChunks := shape(pi, x)
		var readMeter, appendMeter metrics.Meter
		for rep := 0; rep < cfg.Reps; rep++ {
			if err := mixedRep(cfg, path, readerMounts[:nR], appenderMounts[:nA], appChunks, &readMeter, &appendMeter); err != nil {
				return fmt.Errorf("%s x=%d: %w", kind, x, err)
			}
		}
		report(metrics.Summarize(readMeter.Samples()), metrics.Summarize(appendMeter.Samples()), x)
	}
	return nil
}

// preload appends `chunks` chunks to path using 32 parallel loaders.
func preload(env *bsfsEnv, cfg Config, path string, chunks int) error {
	setup := env.mount(0)
	if err := dfs.WriteFile(ctx, setup, path, nil); err != nil {
		return err
	}
	const loaders = 32
	var wg sync.WaitGroup
	errs := make(chan error, loaders)
	for l := 0; l < loaders; l++ {
		n := chunks / loaders
		if l < chunks%loaders {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(l, n int) {
			defer wg.Done()
			fs := env.mount(l)
			w, err := fs.Append(ctx, path)
			if err != nil {
				errs <- err
				return
			}
			data := chunk(cfg, l)
			for i := 0; i < n; i++ {
				if _, err := w.Write(data); err != nil {
					errs <- err
					w.Close()
					return
				}
			}
			if err := w.Close(); err != nil {
				errs <- err
			}
		}(l, n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	env.closeMounts()
	return nil
}

// mixedRep runs one repetition: all readers and appenders start
// together; each reader reads its 10-chunk region chunk by chunk, each
// appender appends its chunks at the tail.
func mixedRep(cfg Config, path string, readers []*bsfs.FS, appenders []*appendClient, appChunks int, readMeter, appendMeter *metrics.Meter) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(readers)+len(appenders))
	start := make(chan struct{})

	for r, fs := range readers {
		wg.Add(1)
		go func(r int, fs *bsfs.FS) {
			defer wg.Done()
			f, err := fs.Open(ctx, path)
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			<-start
			buf := make([]byte, cfg.PageSize)
			base := uint64(r) * chunksPerReader * cfg.PageSize
			for c := 0; c < chunksPerReader; c++ {
				off := base + uint64(c)*cfg.PageSize
				t0 := time.Now()
				if _, err := f.ReadAt(buf, int64(off)); err != nil {
					errs <- fmt.Errorf("reader %d chunk %d: %w", r, c, err)
					return
				}
				readMeter.Record(cfg.PageSize, time.Since(t0))
			}
		}(r, fs)
	}

	for _, c := range appenders {
		wg.Add(1)
		go func(c *appendClient) {
			defer wg.Done()
			w, err := c.fs.Append(ctx, c.path)
			if err != nil {
				errs <- err
				return
			}
			<-start
			for i := 0; i < appChunks; i++ {
				t0 := time.Now()
				if _, err := w.Write(c.data); err != nil {
					errs <- err
					w.Close()
					return
				}
				appendMeter.Record(uint64(len(c.data)), time.Since(t0))
			}
			if err := w.Close(); err != nil {
				errs <- err
			}
		}(c)
	}

	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}
