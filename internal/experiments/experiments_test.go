package experiments

import (
	"testing"
	"time"
)

// smallCfg keeps smoke tests fast: a 24-node cluster, 64 KiB pages,
// 2 reps, high modeled bandwidth so shaping costs stay tiny.
func smallCfg() Config {
	return Config{
		Nodes:         24,
		MetaProviders: 3,
		PageSize:      64 << 10,
		Bandwidth:     500 << 20,
		Latency:       50 * time.Microsecond,
		Reps:          2,
		Seed:          1,
	}
}

func TestFig3Smoke(t *testing.T) {
	series, err := Fig3(smallCfg(), []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 3 {
		t.Fatalf("points = %d", len(series.Points))
	}
	for _, p := range series.Points {
		if p.Y <= 0 {
			t.Errorf("N=%g: throughput %g", p.X, p.Y)
		}
	}
	// Shape: single-client throughput should be at least as good as
	// the most contended point (generous 1.05 slack for noise).
	first, last := series.Points[0].Y, series.Points[len(series.Points)-1].Y
	if last > first*1.5 {
		t.Errorf("throughput grew with contention: %g -> %g", first, last)
	}
}

func TestFig4Fig5Smoke(t *testing.T) {
	cfg := smallCfg()
	s4, err := Fig4(cfg, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(s4.Points) != 2 || s4.Points[0].Y <= 0 || s4.Points[1].Y <= 0 {
		t.Fatalf("fig4 = %+v", s4.Points)
	}
	s5, err := Fig5(cfg, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(s5.Points) != 2 || s5.Points[0].Y <= 0 || s5.Points[1].Y <= 0 {
		t.Fatalf("fig5 = %+v", s5.Points)
	}
}

func TestFig6Smoke(t *testing.T) {
	cfg := smallCfg()
	res, err := Fig6(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HDFS.Points) != 2 || len(res.BSFS.Points) != 2 {
		t.Fatalf("points: hdfs=%d bsfs=%d", len(res.HDFS.Points), len(res.BSFS.Points))
	}
	// The headline claim: BSFS produces exactly one output file at any
	// reducer count; HDFS produces one per reducer.
	for i, p := range res.FilesBSFS.Points {
		if p.Y != 1 {
			t.Errorf("BSFS output files at r=%g: %g", p.X, p.Y)
		}
		if res.FilesHDFS.Points[i].Y != res.FilesHDFS.Points[i].X {
			t.Errorf("HDFS output files at r=%g: %g", p.X, res.FilesHDFS.Points[i].Y)
		}
	}
	// BSFS's centralized metadata grows slower than HDFS's namenode
	// (which also tracks every block).
	lastB := res.MetaBSFS.Points[len(res.MetaBSFS.Points)-1].Y
	lastH := res.MetaHDFS.Points[len(res.MetaHDFS.Points)-1].Y
	if lastB >= lastH {
		t.Errorf("metadata entries: bsfs=%g hdfs=%g", lastB, lastH)
	}
}

func TestShuffleScenarioSmoke(t *testing.T) {
	res, err := Shuffle(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TimeMemory.Points) != 2 || len(res.TimeBlob.Points) != 2 {
		t.Fatalf("time points: memory=%d blob=%d", len(res.TimeMemory.Points), len(res.TimeBlob.Points))
	}
	// The headline semantics: the barrier kill forces the memory
	// backend to re-run maps, while the blob backend re-runs none.
	if got := res.RerunsMemory.Points[1].Y; got == 0 {
		t.Error("memory backend lost no outputs to the barrier kill")
	}
	if got := res.RerunsBlob.Points[1].Y; got != 0 {
		t.Errorf("blob backend re-ran %g maps after the barrier kill", got)
	}
	if res.BlobRecovered == 0 {
		t.Error("blob backend recovered no segments from dead trackers")
	}
}

func TestPipelineSmoke(t *testing.T) {
	cfg := smallCfg()
	res, err := Pipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SequentialSec <= 0 || res.PipelinedSec <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestAblationLockedSmoke(t *testing.T) {
	// The lock's queueing penalty only shows when transfers dominate,
	// so this smoke test runs shaped (10 ms per chunk), unlike the
	// others: unshaped, everything is CPU-bound and serialization
	// can even win on a 2-core box.
	cfg := smallCfg()
	cfg.Bandwidth = 12.5 * (1 << 20)
	cfg.PageSize = 128 << 10
	versioned, locked, err := AblationLockedAppend(cfg, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	// At N=8 the lock must hurt: versioning clearly beats it.
	v8 := versioned.Points[1].Y
	l8 := locked.Points[1].Y
	if v8 <= l8 {
		t.Errorf("versioning (%g MB/s) not better than lock (%g MB/s) at N=8", v8, l8)
	}
}

func TestAblationPlacementSmoke(t *testing.T) {
	series, err := AblationPlacement(smallCfg(), []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("strategies = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 1 || s.Points[0].Y <= 0 {
			t.Errorf("series %s = %+v", s.Name, s.Points)
		}
	}
}

func TestAblationPageSizeSmoke(t *testing.T) {
	series, err := AblationPageSize(smallCfg(), []uint64{16 << 10, 64 << 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 2 {
		t.Fatalf("points = %d", len(series.Points))
	}
}

func TestSnapshotScenario(t *testing.T) {
	// The snapshot-first API's acceptance test: the scenario itself
	// fails on any fixed-version byte mismatch, tail regression,
	// pinned-job size drift, or a pin the collector violated — so a
	// non-nil error here is the assertion; the checks below pin the
	// scenario's shape.
	res, err := Snapshot(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Appenders < 8 {
		t.Errorf("appenders = %d, want >= 8", res.Appenders)
	}
	if res.FixedSnapshots < 2 || res.FixedReads < 2*res.FixedSnapshots {
		t.Errorf("fixed verification too thin: %d snapshots, %d reads", res.FixedSnapshots, res.FixedReads)
	}
	if res.TailVersions == 0 {
		t.Error("tailing reader observed no snapshots")
	}
	if res.PinnedVersion == 0 || res.JobInputBytes != res.PinnedSize {
		t.Errorf("pinned job input: v%d, %d bytes covered, %d at snapshot",
			res.PinnedVersion, res.JobInputBytes, res.PinnedSize)
	}
	if res.JobRecords != res.PinnedSize/64 {
		t.Errorf("job records = %d, want %d", res.JobRecords, res.PinnedSize/64)
	}
	if res.FinalSize <= res.PinnedSize {
		t.Errorf("file did not outgrow the pinned snapshot: %d <= %d", res.FinalSize, res.PinnedSize)
	}
	if res.VersionsCollected == 0 || !res.GoneAfterGC {
		t.Errorf("retention idle after pins released: collected=%d gone=%v",
			res.VersionsCollected, res.GoneAfterGC)
	}
}

func TestGCScenarioSmoke(t *testing.T) {
	res, err := GC(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bound: GC runs hold storage within 2x their
	// working set; the baselines grow linearly with rounds.
	if res.OverwriteBoundRatio <= 0 || res.OverwriteBoundRatio > 2 {
		t.Errorf("overwrite bound ratio = %.2f, want (0, 2]", res.OverwriteBoundRatio)
	}
	if res.RotateBoundRatio <= 0 || res.RotateBoundRatio > 2 {
		t.Errorf("rotate bound ratio = %.2f, want (0, 2]", res.RotateBoundRatio)
	}
	ogc := res.OverwriteGC.Points[len(res.OverwriteGC.Points)-1].Y
	oraw := res.OverwriteNoGC.Points[len(res.OverwriteNoGC.Points)-1].Y
	if oraw < 2*ogc {
		t.Errorf("overwrite: no-GC baseline %f MiB not clearly above GC run %f MiB", oraw, ogc)
	}
	rgc := res.RotateGC.Points[len(res.RotateGC.Points)-1].Y
	rraw := res.RotateNoGC.Points[len(res.RotateNoGC.Points)-1].Y
	if rraw < 2*rgc {
		t.Errorf("rotate: no-GC baseline %f MiB not clearly above GC run %f MiB", rraw, rgc)
	}
	if res.GCStats.PagesReclaimed == 0 || res.GCStats.BlobsDeleted == 0 {
		t.Errorf("collector idle across the scenario: %+v", res.GCStats)
	}
}
