package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Bench comparison: the repo commits BENCH_<fig>.json baselines from
// -quick runs, and CI re-runs the same scenarios against them. Drift
// beyond the tolerance band is a warning, never a failure — these are
// shaped-simulation numbers on shared runners, so the trajectory is
// the signal, not any single run.

// DefaultTolerancePct is the drift band (relative, percent) inside
// which a metric counts as unchanged.
const DefaultTolerancePct = 25

// BenchDrift is one metric compared between a baseline report and a
// fresh run of the same scenario.
type BenchDrift struct {
	// Fig names the scenario both reports came from.
	Fig string `json:"fig"`
	// Metric addresses the compared value, e.g.
	// "series[appenders]/BSFS read throughput @ x=30",
	// "latency/blob.append/p99_ms" or "extra/precision_top10".
	Metric string `json:"metric"`
	// Baseline and Current are the two values; DeltaPct is the signed
	// relative change from baseline, in percent.
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	DeltaPct float64 `json:"delta_pct"`
	// Over marks drift beyond the tolerance band.
	Over bool `json:"over,omitempty"`
}

// LoadBench reads a BENCH_<fig>.json report.
func LoadBench(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if rep.Fig == "" {
		return nil, fmt.Errorf("parse %s: no fig name", path)
	}
	return &rep, nil
}

// CompareBench diffs a fresh report against its baseline: every series
// point matched by (series name, x), every latency quantile matched by
// (op, quantile), every extra scalar matched by key. tolerancePct <= 0
// means DefaultTolerancePct. Metrics present on only one side are
// skipped — scenarios may grow curves across PRs — but a config
// mismatch yields a single incomparable-config drift entry instead of
// point-by-point noise.
func CompareBench(baseline, current *BenchReport, tolerancePct float64) []BenchDrift {
	if tolerancePct <= 0 {
		tolerancePct = DefaultTolerancePct
	}
	if baseline.Config != current.Config {
		return []BenchDrift{{
			Fig:    baseline.Fig,
			Metric: "config",
			Over:   true,
		}}
	}
	var out []BenchDrift
	add := func(metric string, base, cur float64) {
		if base == 0 {
			return // no relative scale to drift against
		}
		pct := 100 * (cur - base) / math.Abs(base)
		out = append(out, BenchDrift{
			Fig:      baseline.Fig,
			Metric:   metric,
			Baseline: base,
			Current:  cur,
			DeltaPct: pct,
			Over:     math.Abs(pct) > tolerancePct,
		})
	}

	cur := make(map[string]BenchSeries, len(current.Series))
	for _, s := range current.Series {
		cur[s.Name] = s
	}
	for _, bs := range baseline.Series {
		cs, ok := cur[bs.Name]
		if !ok {
			continue
		}
		at := make(map[float64]float64, len(cs.Points))
		for _, p := range cs.Points {
			at[p.X] = p.Y
		}
		for _, p := range bs.Points {
			if y, ok := at[p.X]; ok {
				add(fmt.Sprintf("series/%s @ %s=%g", bs.Name, orDefault(bs.XLabel, "x"), p.X), p.Y, y)
			}
		}
	}

	ops := make([]string, 0, len(baseline.Latency))
	for op := range baseline.Latency {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		b := baseline.Latency[op]
		c, ok := current.Latency[op]
		if !ok {
			continue
		}
		add("latency/"+op+"/p50_ms", b.P50Ms, c.P50Ms)
		add("latency/"+op+"/p99_ms", b.P99Ms, c.P99Ms)
	}

	keys := make([]string, 0, len(baseline.Extra))
	for k := range baseline.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if v, ok := current.Extra[k]; ok {
			add("extra/"+k, baseline.Extra[k], v)
		}
	}
	return out
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// FormatDrift renders a comparison for humans (and, with annotate set,
// for GitHub Actions: over-tolerance lines become ::warning
// annotations the run summary surfaces without failing the job).
func FormatDrift(drifts []BenchDrift, tolerancePct float64, annotate bool) string {
	if tolerancePct <= 0 {
		tolerancePct = DefaultTolerancePct
	}
	var b strings.Builder
	over := 0
	for _, d := range drifts {
		if d.Metric == "config" {
			fmt.Fprintf(&b, "%s: baseline config differs from this run; not comparable\n", d.Fig)
			over++
			continue
		}
		if !d.Over {
			continue
		}
		over++
		line := fmt.Sprintf("%s: %s drifted %+.1f%% (baseline %.4g, now %.4g, band ±%.0f%%)",
			d.Fig, d.Metric, d.DeltaPct, d.Baseline, d.Current, tolerancePct)
		if annotate {
			line = "::warning title=bench drift::" + line
		}
		b.WriteString(line + "\n")
	}
	if over == 0 {
		fmt.Fprintf(&b, "%d metrics compared, all within ±%.0f%% of baseline\n", len(drifts), tolerancePct)
	}
	return b.String()
}
