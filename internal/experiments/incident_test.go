package experiments

import "testing"

// TestIncident runs the flight-recorder drill end to end: kill a VM
// shard mid-workload under an armed watchdog, assert the health alert
// fires and clears with hysteresis, and verify a post-crash replay of
// the flight log reconstructs the incident timeline. The scenario
// enforces its own acceptance checks; the test adds the bounds that
// matter for the figure.
func TestIncident(t *testing.T) {
	if testing.Short() {
		t.Skip("incident drill skipped in -short")
	}
	res, err := Incident(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// FireAfter=1 on a 50ms collection cadence: the alert must land
	// within a handful of collection passes of the kill (one pass to
	// notice, plus the health ping timeout the check itself burns).
	if res.FireCollections > 6 {
		t.Errorf("alert fired after %d collections; want within a collection interval or so", res.FireCollections)
	}
	if res.ClearEvals < 3 {
		t.Errorf("alert cleared after %d evals; hysteresis demands >= 3", res.ClearEvals)
	}
	if res.ReplaySlowTraceSpans < 2 {
		t.Errorf("largest replayed slow trace has %d spans; want a causal tree (>= 2)", res.ReplaySlowTraceSpans)
	}
	if res.SnapshotsBeforeKill == 0 || res.SnapshotsAfterRestart == 0 {
		t.Errorf("snapshot timeline does not bracket the outage: %d before kill, %d after restart",
			res.SnapshotsBeforeKill, res.SnapshotsAfterRestart)
	}
	if res.AlertFires == 0 || res.AlertClears == 0 {
		t.Errorf("replay missing alert transitions: %d fires, %d clears", res.AlertFires, res.AlertClears)
	}
	if res.HealthTransitions == 0 {
		t.Error("replay recorded no component health transitions across a shard kill")
	}
	if !res.TimelineRendered {
		t.Error("FormatTimeline rendered nothing for a non-empty replay")
	}
	t.Logf("incident: fire after %.1fms (%d collections), clear after %d evals, replay %d events (%d traces, %d snapshots)",
		res.FireDelayMS, res.FireCollections, res.ClearEvals, res.ReplayEvents, res.ReplayTraces, res.ReplaySnapshots)
}
