package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"blobseer/internal/metrics"
	"blobseer/internal/obs"
)

// BenchReport is the machine-readable result of one experiment
// scenario. Each -fig run can emit one as BENCH_<fig>.json so CI
// uploads a comparable artifact per PR and the cross-PR trajectory of
// throughput and tail latency is a file diff, not a log archaeology
// exercise.
type BenchReport struct {
	// Fig names the scenario ("write", "read", "shuffle", "gc", ...).
	Fig    string      `json:"fig"`
	Config BenchConfig `json:"config"`
	// Series carries the scenario's figure data (throughput or storage
	// curves), one entry per plotted line.
	Series []BenchSeries `json:"series,omitempty"`
	// Latency maps an operation name to its latency quantiles over the
	// run, from the process-wide registry histograms the scenario's
	// traffic recorded into (e.g. "blob.append", "shuffle.fetch").
	Latency map[string]metrics.LatencyQuantiles `json:"latency,omitempty"`
	// Extra holds scenario-specific scalars (bound ratios, overlap
	// seconds, recovered segments).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// BenchConfig records the topology knobs that make two reports
// comparable (or not).
type BenchConfig struct {
	Nodes         int     `json:"nodes"`
	MetaProviders int     `json:"meta_providers"`
	PageSize      uint64  `json:"page_size"`
	BandwidthMBps float64 `json:"bandwidth_mbps"`
	Reps          int     `json:"reps"`
	WriteDepth    int     `json:"write_depth,omitempty"`
	ReadDepth     int     `json:"read_depth,omitempty"`
	VMShards      int     `json:"vm_shards,omitempty"`
}

// BenchSeries is a metrics.Series with JSON tags.
type BenchSeries struct {
	Name   string       `json:"name"`
	XLabel string       `json:"x_label"`
	YLabel string       `json:"y_label"`
	Points []BenchPoint `json:"points"`
}

// BenchPoint is one (x, y) sample with its error-bar half-width.
type BenchPoint struct {
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
	Err float64 `json:"err,omitempty"`
}

func benchConfig(cfg Config) BenchConfig {
	return BenchConfig{
		Nodes:         cfg.Nodes,
		MetaProviders: cfg.MetaProviders,
		PageSize:      cfg.PageSize,
		BandwidthMBps: cfg.Bandwidth / (1 << 20),
		Reps:          cfg.Reps,
		WriteDepth:    cfg.WriteDepth,
		ReadDepth:     cfg.ReadDepth,
		VMShards:      cfg.VMShards,
	}
}

// benchSeries converts figure series, skipping nils.
func benchSeries(in ...*metrics.Series) []BenchSeries {
	out := make([]BenchSeries, 0, len(in))
	for _, s := range in {
		if s == nil {
			continue
		}
		bs := BenchSeries{Name: s.Name, XLabel: s.XLabel, YLabel: s.YLabel}
		for _, p := range s.Points {
			bs.Points = append(bs.Points, BenchPoint{X: p.X, Y: p.Y, Err: p.Err})
		}
		out = append(out, bs)
	}
	return out
}

// benchRun brackets one scenario: it snapshots the named registry
// operation histograms at start so latencies() reports only what the
// scenario itself recorded, even when several scenarios share the
// process (tests, -fig all).
type benchRun struct {
	before map[string]metrics.HistogramSnapshot
}

func startBenchRun(ops ...string) *benchRun {
	r := &benchRun{before: make(map[string]metrics.HistogramSnapshot, len(ops))}
	for _, op := range ops {
		r.before[op] = metrics.Default.Op(op).Snapshot()
	}
	return r
}

// latencies returns the quantiles of each bracketed op, omitting ops
// the scenario never exercised.
func (r *benchRun) latencies() map[string]metrics.LatencyQuantiles {
	out := make(map[string]metrics.LatencyQuantiles)
	for op, prev := range r.before {
		if d := metrics.Default.Op(op).Snapshot().Sub(prev); d.Count > 0 {
			out[op] = d.Latency()
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// WriteBench writes the report to dir/BENCH_<fig>.json and returns the
// path.
func WriteBench(dir string, rep *BenchReport) (string, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+rep.Fig+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// BenchWrite runs the Figure 3 concurrent-append sweep and packages it
// with the client-side append latency distribution.
func BenchWrite(cfg Config, clients []int) (*BenchReport, *metrics.Series, error) {
	run := startBenchRun("blob.append", "blob.write")
	s, err := Fig3(cfg, clients)
	if err != nil {
		return nil, nil, err
	}
	rep := &BenchReport{
		Fig:     "write",
		Config:  benchConfig(cfg.withDefaults()),
		Series:  benchSeries(s),
		Latency: run.latencies(),
	}
	return rep, s, nil
}

// BenchRead runs the Figure 4 readers-under-appenders sweep and
// packages it with the read latency distribution.
func BenchRead(cfg Config, appenders []int) (*BenchReport, *metrics.Series, error) {
	run := startBenchRun("blob.pageview", "blob.read", "blob.append")
	s, err := Fig4(cfg, appenders)
	if err != nil {
		return nil, nil, err
	}
	rep := &BenchReport{
		Fig:     "read",
		Config:  benchConfig(cfg.withDefaults()),
		Series:  benchSeries(s),
		Latency: run.latencies(),
	}
	return rep, s, nil
}

// BenchShuffle runs the shuffle-backend comparison. Segment append and
// fetch latencies come from the shuffle stats attached to the
// process-wide registry; only shuffle runs record them, so the
// snapshot is the scenario's own traffic.
func BenchShuffle(cfg Config) (*BenchReport, *ShuffleResult, error) {
	run := startBenchRun("blob.append", "blob.read")
	res, err := Shuffle(cfg)
	if err != nil {
		return nil, nil, err
	}
	lat := run.latencies()
	snap := metrics.Default.Snapshot()
	if lat == nil {
		lat = make(map[string]metrics.LatencyQuantiles)
	}
	if snap.Shuffle.AppendLatency.Count > 0 {
		lat["shuffle.append"] = snap.Shuffle.AppendLatency
	}
	if snap.Shuffle.FetchLatency.Count > 0 {
		lat["shuffle.fetch"] = snap.Shuffle.FetchLatency
	}
	return &BenchReport{
		Fig:    "shuffle",
		Config: benchConfig(cfg.withDefaults()),
		Series: benchSeries(res.TimeMemory, res.TimeBlob, res.RerunsMemory, res.RerunsBlob),
		Extra: map[string]float64{
			"blob_overlap_sec":   res.BlobOverlapSec,
			"blob_recovered":     float64(res.BlobRecovered),
			"segments_recovered": float64(snap.Shuffle.SegmentsRecovered),
		},
		Latency: lat,
	}, res, nil
}

// BenchGC runs the storage-lifecycle scenario; pass latency comes from
// the collectors' stats attached to the registry.
func BenchGC(cfg Config) (*BenchReport, *GCResult, error) {
	res, err := GC(cfg)
	if err != nil {
		return nil, nil, err
	}
	lat := map[string]metrics.LatencyQuantiles{}
	if snap := metrics.Default.Snapshot(); snap.GC.PassLatency.Count > 0 {
		lat["gc.pass"] = snap.GC.PassLatency
	}
	return &BenchReport{
		Fig:    "gc",
		Config: benchConfig(cfg.withDefaults()),
		Series: benchSeries(res.OverwriteGC, res.OverwriteNoGC, res.RotateGC, res.RotateNoGC),
		Extra: map[string]float64{
			"overwrite_bound_ratio": res.OverwriteBoundRatio,
			"rotate_bound_ratio":    res.RotateBoundRatio,
			"gc_passes":             float64(res.GCStats.Passes),
			"pages_reclaimed":       float64(res.GCStats.PagesReclaimed),
		},
		Latency: lat,
	}, res, nil
}

// BenchMeta runs the metadata-plane scenario (shard scaling, failover,
// cold recovery) and flattens its headline numbers into a comparable
// report, alongside the raw MetaResult the scenario already emits.
func BenchMeta(cfg Config) (*BenchReport, *MetaResult, error) {
	run := startBenchRun("blob.append")
	res, err := Meta(cfg)
	if err != nil {
		return nil, nil, err
	}
	scaling := &metrics.Series{Name: "publish ops/s", XLabel: "vm shards", YLabel: "ops/s"}
	for _, p := range res.Scaling {
		scaling.Add(float64(p.Shards), p.OpsPerSec, 0)
	}
	return &BenchReport{
		Fig:    "meta",
		Config: benchConfig(cfg.withDefaults()),
		Series: benchSeries(scaling),
		Extra: map[string]float64{
			"failover_lost_writes":     float64(res.Failover.LostWrites),
			"failover_acked_total":     float64(res.Failover.AckedTotal),
			"recovery_records":         float64(res.Recovery.Records),
			"recovery_replay_ms":       res.Recovery.ReplayMS,
			"recovery_versions_served": float64(res.Recovery.Versions),
		},
		Latency: run.latencies(),
	}, res, nil
}

// BenchHotspot runs the skewed-read heat-tracking scenario and
// packages the sketch-vs-ground-truth scores with the read latency
// distribution; the acceptance bar (precision >= 0.9 on the top 10)
// is asserted by the caller from HotspotResult.Precision.
func BenchHotspot(cfg Config) (*BenchReport, *HotspotResult, []*metrics.Series, error) {
	run := startBenchRun("blob.pageview", "blob.read")
	res, series, err := Hotspot(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	holder := 0.0
	if res.HotProviderIsHolder {
		holder = 1.0
	}
	rep := &BenchReport{
		Fig:    "hotspot",
		Config: benchConfig(cfg.withDefaults()),
		Series: benchSeries(series...),
		Extra: map[string]float64{
			"precision_top10":        res.Precision,
			"replica_imbalance":      res.ReplicaImbalance,
			"max_utilization":        res.MaxUtilization,
			"hot_provider_is_holder": holder,
			"pages":                  float64(res.Pages),
			"accesses":               float64(res.Accesses),
		},
		Latency: run.latencies(),
	}
	return rep, res, series, nil
}

// BenchIncident runs the flight-recorder incident drill and packages
// the alerting/replay verdicts with the append latency distribution;
// the scenario itself enforces the acceptance checks (fire within the
// collection budget, hysteresis clear, replay brackets the kill), so a
// report existing at all means the drill passed.
func BenchIncident(cfg Config) (*BenchReport, *IncidentResult, error) {
	run := startBenchRun("blob.append", "blob.read")
	res, err := Incident(cfg)
	if err != nil {
		return nil, nil, err
	}
	rep := &BenchReport{
		Fig:    "incident",
		Config: benchConfig(cfg.withDefaults()),
		Extra: map[string]float64{
			"outage_ms":               res.OutageMS,
			"fire_delay_ms":           res.FireDelayMS,
			"fire_collections":        float64(res.FireCollections),
			"clear_evals":             float64(res.ClearEvals),
			"replay_events":           float64(res.ReplayEvents),
			"replay_traces":           float64(res.ReplayTraces),
			"replay_slow_trace_spans": float64(res.ReplaySlowTraceSpans),
			"replay_snapshots":        float64(res.ReplaySnapshots),
			"snapshots_before_kill":   float64(res.SnapshotsBeforeKill),
			"snapshots_after_restart": float64(res.SnapshotsAfterRestart),
			"alert_fires":             float64(res.AlertFires),
			"alert_clears":            float64(res.AlertClears),
			"health_transitions":      float64(res.HealthTransitions),
		},
		Latency: run.latencies(),
	}
	return rep, res, nil
}

// TraceAppend boots a fresh deployment, runs ONE traced append and
// read-back against it, and returns the rendered causal span tree:
// the client's blob.append with its merge/pages/commit stages, each
// rpc:* client span, and the serve:* spans stitched in from the
// version-manager and provider processes by the trace context the
// frames carried. This is the observability acceptance demo — one
// append explained end to end across processes.
func TraceAppend(ctx context.Context, cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	env, err := newBSFSEnv(cfg)
	if err != nil {
		return "", err
	}
	defer env.Close()

	hosts := env.cluster.ProviderHosts()
	c := env.cluster.Client(hosts[0])
	defer c.Close()
	bl, err := c.Create(ctx, cfg.PageSize)
	if err != nil {
		return "", err
	}

	tctx, root := obs.StartTrace(ctx, "append.sample")
	data := chunk(cfg, 0)
	wr, err := bl.Append(tctx, data)
	if err != nil {
		root.End(err)
		return "", err
	}
	if _, err := bl.WaitPublished(tctx, wr.Ver); err != nil {
		root.End(err)
		return "", err
	}
	buf := make([]byte, len(data))
	if _, err := bl.ReadAtInto(tctx, wr.Ver, 0, buf); err != nil {
		root.End(err)
		return "", err
	}
	root.End(nil)

	trace, _, ok := obs.SpanIDs(tctx)
	if !ok {
		return "", fmt.Errorf("trace context lost")
	}
	return obs.Spans.Tree(trace), nil
}
