package shuffle

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/transport"
)

var ctx = context.Background()

func TestBackendString(t *testing.T) {
	if Memory.String() != "memory" || Blob.String() != "blob" {
		t.Errorf("strings = %q, %q", Memory, Blob)
	}
	if Backend(9).String() == "" {
		t.Error("unknown backend renders empty")
	}
}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"memory", Memory, true},
		{"blob", Blob, true},
		{"ram", Memory, false},
		{"", Memory, false},
	} {
		got, err := ParseBackend(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseBackend(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestPadToPage(t *testing.T) {
	for _, tc := range []struct {
		n, page uint64
		want    uint64
	}{
		{0, 8, 8}, // empty payload still occupies one page
		{1, 8, 8},
		{8, 8, 8},
		{9, 8, 16},
		{16, 8, 16},
	} {
		got := padToPage(make([]byte, tc.n), tc.page)
		if uint64(len(got)) != tc.want {
			t.Errorf("padToPage(%d, %d) = %d bytes, want %d", tc.n, tc.page, len(got), tc.want)
		}
	}
}

// TestIndexPublishNext drives the index single-threaded through the
// reducer contract: segments arrive in publish order, duplicates are
// dropped whole, and completion needs the map count.
func TestIndexPublishNext(t *testing.T) {
	ix := NewIndex(2)
	if !ix.Publish(0, []Segment{{Map: 0, Part: 0, Len: 1}, {Map: 0, Part: 1, Len: 2}}) {
		t.Fatal("first publish rejected")
	}
	if ix.Publish(0, []Segment{{Map: 0, Part: 0, Len: 99}, {Map: 0, Part: 1, Len: 99}}) {
		t.Fatal("duplicate publish accepted")
	}
	seg, ok, err := ix.Next(ctx, 1, 0)
	if err != nil || !ok || seg.Len != 2 {
		t.Fatalf("Next = %+v, %v, %v", seg, ok, err)
	}
	ix.SetMapCount(1)
	if _, ok, err := ix.Next(ctx, 1, 1); ok || err != nil {
		t.Fatalf("partition not complete after all maps consumed: %v, %v", ok, err)
	}
}

func TestIndexNextHonorsContext(t *testing.T) {
	ix := NewIndex(1)
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, _, err := ix.Next(cctx, 0, 0)
		done <- err
	}()
	cancel()
	if err := <-done; err == nil {
		t.Fatal("Next returned nil error after context cancellation")
	}
}

func TestIndexFailUnblocks(t *testing.T) {
	ix := NewIndex(1)
	done := make(chan error, 1)
	go func() {
		_, _, err := ix.Next(ctx, 0, 0)
		done <- err
	}()
	ix.Fail(fmt.Errorf("boom"))
	if err := <-done; err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

// TestIndexConcurrentPublishNext is the segment-index race test: many
// publishers (including duplicate attempts) against one consumer per
// partition, under -race in CI. Every consumer must see exactly one
// segment per map, in a consistent per-map shape.
func TestIndexConcurrentPublishNext(t *testing.T) {
	const maps, parts = 64, 4
	ix := NewIndex(parts)

	var wg sync.WaitGroup
	for m := 0; m < maps; m++ {
		// Two attempts per map race to publish; exactly one must win.
		for attempt := 0; attempt < 2; attempt++ {
			wg.Add(1)
			go func(m, attempt int) {
				defer wg.Done()
				segs := make([]Segment, parts)
				for p := range segs {
					segs[p] = Segment{Map: uint64(m), Part: uint64(p), Len: uint64(attempt + 1)}
				}
				ix.Publish(uint64(m), segs)
			}(m, attempt)
		}
	}
	go func() {
		wg.Wait()
		ix.SetMapCount(maps)
	}()

	var consumers sync.WaitGroup
	errs := make(chan error, parts)
	for p := 0; p < parts; p++ {
		consumers.Add(1)
		go func(p int) {
			defer consumers.Done()
			seen := make(map[uint64]bool)
			for consumed := 0; ; consumed++ {
				seg, ok, err := ix.Next(ctx, p, consumed)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					if len(seen) != maps {
						errs <- fmt.Errorf("partition %d consumed %d maps, want %d", p, len(seen), maps)
					}
					return
				}
				if seen[seg.Map] {
					errs <- fmt.Errorf("partition %d saw map %d twice", p, seg.Map)
					return
				}
				seen[seg.Map] = true
			}
		}(p)
	}
	consumers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// newTestCluster boots a small real BlobSeer cluster for store tests.
func newTestCluster(t *testing.T) *blob.Cluster {
	t.Helper()
	c, err := blob.NewCluster(transport.NewMemNet(), blob.ClusterConfig{
		Providers: 4, MetaProviders: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// segPayload builds a distinguishable payload for (map, part).
func segPayload(m, p, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(m*31 + p*7 + i)
	}
	return buf
}

// TestStoreAppendFetchRoundtrip writes every map's partitions through
// AppendMap and reads them back through Next+Fetch, checking content
// and checksums end to end.
func TestStoreAppendFetchRoundtrip(t *testing.T) {
	const maps, parts, pageSize = 6, 3, 256
	cluster := newTestCluster(t)
	c := cluster.Client("node-000")
	defer c.Close()

	st, err := NewBlobStore(ctx, c, 1, parts, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < maps; m++ {
		data := make([][]byte, parts)
		for p := range data {
			// Sizes straddle page boundaries to exercise padding.
			data[p] = segPayload(m, p, 100+m*90+p*17)
		}
		if err := st.AppendMap(ctx, c, uint64(m), data); err != nil {
			t.Fatalf("append map %d: %v", m, err)
		}
	}
	st.SetMapCount(maps)

	for p := 0; p < parts; p++ {
		seen := make(map[uint64]bool)
		for consumed := 0; ; consumed++ {
			seg, ok, err := st.Next(ctx, p, consumed)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got, err := st.Fetch(ctx, c, seg)
			if err != nil {
				t.Fatalf("fetch map %d part %d: %v", seg.Map, p, err)
			}
			want := segPayload(int(seg.Map), p, int(seg.Len))
			if string(got) != string(want) {
				t.Fatalf("map %d part %d payload mismatch (%d bytes)", seg.Map, p, len(got))
			}
			// A re-read (a retried reduce attempt) must not re-count:
			// the stats assertion below stays exact despite this.
			if _, err := st.Fetch(ctx, c, seg); err != nil {
				t.Fatalf("refetch map %d part %d: %v", seg.Map, p, err)
			}
			st.MarkRecovered(seg)
			st.MarkRecovered(seg) // idempotent per segment
			seen[seg.Map] = true
		}
		if len(seen) != maps {
			t.Fatalf("partition %d saw %d maps, want %d", p, len(seen), maps)
		}
	}
	snap := st.Stats().Snapshot()
	if snap.SegmentsAppended != maps*parts || snap.SegmentsFetched != maps*parts ||
		snap.SegmentsRecovered != maps*parts {
		t.Errorf("stats = %+v", snap)
	}
}

// TestStoreConcurrentAppenders is the concurrent-appender race test of
// the blob store: every map appends from its own client at once (the
// paper's nMaps-appenders-per-BLOB workload) while reducers stream the
// segments out as they publish. Run under -race in CI.
func TestStoreConcurrentAppenders(t *testing.T) {
	const maps, parts, pageSize = 16, 3, 256
	cluster := newTestCluster(t)
	setup := cluster.Client("node-000")
	defer setup.Close()

	st, err := NewBlobStore(ctx, setup, 7, parts, pageSize)
	if err != nil {
		t.Fatal(err)
	}

	var appenders sync.WaitGroup
	appendErrs := make(chan error, maps)
	for m := 0; m < maps; m++ {
		appenders.Add(1)
		go func(m int) {
			defer appenders.Done()
			c := cluster.Client(fmt.Sprintf("node-%03d", m%4))
			defer c.Close()
			data := make([][]byte, parts)
			for p := range data {
				data[p] = segPayload(m, p, 64+m*13+p*5)
			}
			if err := st.AppendMap(ctx, c, uint64(m), data); err != nil {
				appendErrs <- fmt.Errorf("map %d: %w", m, err)
			}
		}(m)
	}
	go func() {
		appenders.Wait()
		st.SetMapCount(maps)
	}()

	var readers sync.WaitGroup
	readErrs := make(chan error, parts)
	for p := 0; p < parts; p++ {
		readers.Add(1)
		go func(p int) {
			defer readers.Done()
			c := cluster.Client(fmt.Sprintf("node-%03d", p%4))
			defer c.Close()
			count := 0
			for consumed := 0; ; consumed++ {
				seg, ok, err := st.Next(ctx, p, consumed)
				if err != nil {
					readErrs <- err
					return
				}
				if !ok {
					if count != maps {
						readErrs <- fmt.Errorf("partition %d got %d segments, want %d", p, count, maps)
					}
					return
				}
				got, err := st.Fetch(ctx, c, seg)
				if err != nil {
					readErrs <- err
					return
				}
				want := segPayload(int(seg.Map), p, int(seg.Len))
				if string(got) != string(want) {
					readErrs <- fmt.Errorf("map %d part %d payload mismatch", seg.Map, p)
					return
				}
				count++
			}
		}(p)
	}
	readers.Wait()
	close(appendErrs)
	close(readErrs)
	for err := range appendErrs {
		t.Error(err)
	}
	for err := range readErrs {
		t.Error(err)
	}
}

// TestStoreChecksumRejectsWrongSegment tampers with a segment's
// recorded checksum and expects Fetch to refuse it.
func TestStoreChecksumRejectsWrongSegment(t *testing.T) {
	cluster := newTestCluster(t)
	c := cluster.Client("node-001")
	defer c.Close()
	st, err := NewBlobStore(ctx, c, 2, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendMap(ctx, c, 0, [][]byte{segPayload(0, 0, 50)}); err != nil {
		t.Fatal(err)
	}
	st.SetMapCount(1)
	seg, ok, err := st.Next(ctx, 0, 0)
	if err != nil || !ok {
		t.Fatalf("Next = %v, %v", ok, err)
	}
	seg.Sum ^= 0xdeadbeef
	if _, err := st.Fetch(ctx, c, seg); err == nil {
		t.Fatal("corrupted checksum accepted")
	}
}
