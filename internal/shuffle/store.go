package shuffle

import (
	"context"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/metrics"
	"blobseer/internal/obs"
)

// Index is the concurrent segment directory of one job: map tasks
// publish their segments as they complete, and reducers block on Next
// until the segments of their partition arrive — the mechanism that
// lets shuffle overlap the map phase. Publication is at-most-once per
// map task: re-executed attempts are deduplicated, so every reducer
// consumes exactly one segment per map.
//
// Like the jobtracker's control messages, the index is in-process
// state (Go functions cannot cross a process boundary); all DATA
// movement — the segment appends and fetches — goes through the
// transport layer and is shaped and measured like the paper's.
type Index struct {
	mu        sync.Mutex
	cond      *sync.Cond
	segs      [][]Segment // per partition, publish order
	published map[uint64]bool
	mapCount  int // total map tasks; -1 until the split stream closes
	err       error
}

// NewIndex returns an empty index over the given partition count.
func NewIndex(partitions int) *Index {
	ix := &Index{
		segs:      make([][]Segment, partitions),
		published: make(map[uint64]bool),
		mapCount:  -1,
	}
	ix.cond = sync.NewCond(&ix.mu)
	return ix
}

// Publish registers one map task's segments (one per partition) and
// reports whether the map was new. A duplicate publication — a
// re-executed map attempt whose first attempt already published — is
// dropped whole, so reducers never see a map twice and never see a
// mix of attempts.
func (ix *Index) Publish(mapID uint64, segs []Segment) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.published[mapID] {
		return false
	}
	ix.published[mapID] = true
	for _, s := range segs {
		ix.segs[s.Part] = append(ix.segs[s.Part], s)
	}
	ix.cond.Broadcast()
	return true
}

// SetMapCount records the job's final map-task count (known once the
// split stream closes), letting reducers detect partition completion.
func (ix *Index) SetMapCount(n int) {
	ix.mu.Lock()
	ix.mapCount = n
	ix.cond.Broadcast()
	ix.mu.Unlock()
}

// Fail poisons the index: blocked and future Next calls return err.
func (ix *Index) Fail(err error) {
	if err == nil {
		return
	}
	ix.mu.Lock()
	if ix.err == nil {
		ix.err = err
	}
	ix.cond.Broadcast()
	ix.mu.Unlock()
}

// Next returns partition part's consumed-th segment in publish order,
// blocking until it is published. ok == false (with nil error) means
// the partition is complete: every map task's segment was consumed.
// Reducers track their own consumed count, so a re-executed reduce
// attempt re-reads its partition from the start.
func (ix *Index) Next(ctx context.Context, part, consumed int) (seg Segment, ok bool, err error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	// The common steady state answers without blocking; the context
	// watcher is only spawned once the call actually has to wait.
	var stop chan struct{}
	defer func() {
		if stop != nil {
			close(stop)
		}
	}()
	for {
		if ix.err != nil {
			return Segment{}, false, ix.err
		}
		if err := ctx.Err(); err != nil {
			return Segment{}, false, err
		}
		if consumed < len(ix.segs[part]) {
			return ix.segs[part][consumed], true, nil
		}
		if ix.mapCount >= 0 && consumed >= ix.mapCount {
			return Segment{}, false, nil
		}
		if stop == nil {
			// Wake the cond wait when the caller's context dies; the
			// broadcast happens under the lock, so it cannot slot
			// between the loop's ctx check and the cond.Wait
			// re-release.
			stop = make(chan struct{})
			go func(stop chan struct{}) {
				select {
				case <-ctx.Done():
					ix.mu.Lock()
					ix.cond.Broadcast()
					ix.mu.Unlock()
				case <-stop:
				}
			}(stop)
		}
		ix.cond.Wait()
	}
}

// Store is the blob-backed durable map-output store of one job: one
// intermediate BLOB per reduce partition, appended to concurrently by
// every map task and read back by reducers through the client's shared
// page cache. Published segments live in BlobSeer — replicated,
// immutable, versioned — so a tracker dying after its maps completed
// costs nothing: the segments outlive it.
//
// Intermediate BLOBs live exactly as long as their job: the jobtracker
// calls Cleanup at job end (unless the job opts out with
// KeepIntermediate), retiring them through the garbage collector so a
// busy cluster's shuffle traffic does not accrete storage forever.
// While the job runs, every segment fetch holds a lease-style version
// pin, so even an operator-issued delete cannot reclaim a segment out
// from under a streaming reducer.
type Store struct {
	*Index
	jobID    uint64
	pageSize uint64
	blobs    []uint64 // partition -> intermediate BLOB id
	stats    *metrics.ShuffleStats

	fetchMu   sync.Mutex
	fetched   map[segKey]bool // segments fetched at least once
	recovered map[segKey]bool // segments counted as recovered
}

// segKey identifies one segment for per-segment stats accounting.
type segKey struct{ m, part uint64 }

// NewBlobStore creates one intermediate BLOB per partition through c
// (any client will do — creation is a version-manager call; the data
// flows through each appender's own client).
func NewBlobStore(ctx context.Context, c *blob.Client, jobID uint64, partitions int, pageSize uint64) (*Store, error) {
	if partitions <= 0 {
		return nil, fmt.Errorf("shuffle: partitions must be positive, got %d", partitions)
	}
	if pageSize == 0 {
		return nil, fmt.Errorf("shuffle: page size must be positive")
	}
	st := &Store{
		Index:     NewIndex(partitions),
		jobID:     jobID,
		pageSize:  pageSize,
		blobs:     make([]uint64, 0, partitions),
		stats:     &metrics.ShuffleStats{},
		fetched:   make(map[segKey]bool),
		recovered: make(map[segKey]bool),
	}
	metrics.Default.AttachShuffleStats(st.stats)
	for p := 0; p < partitions; p++ {
		b, err := c.Create(ctx, pageSize)
		if err != nil {
			return nil, fmt.Errorf("shuffle: create partition %d BLOB: %w", p, err)
		}
		// Opt out of any cluster-default RetainLatest policy: reducers
		// legitimately read EARLY versions late (each map append is a
		// new version, and a re-executed reduce attempt re-reads its
		// partition from segment zero), so retention collecting old
		// versions mid-job would fail fetches at their seg.Ver. The
		// BLOBs' lifecycle is the job's: Cleanup retires them whole.
		if err := b.SetRetention(ctx, 0); err != nil {
			return nil, fmt.Errorf("shuffle: retention opt-out partition %d: %w", p, err)
		}
		st.blobs = append(st.blobs, b.ID())
	}
	return st, nil
}

// Partitions returns the store's reduce-partition count.
func (st *Store) Partitions() int { return len(st.blobs) }

// Blobs returns the intermediate BLOB ids (one per partition).
func (st *Store) Blobs() []uint64 { return append([]uint64(nil), st.blobs...) }

// Cleanup retires every intermediate BLOB through the garbage
// collector. The jobtracker calls it once the job is over — reducers
// are drained by then, so no pin is held and the partitions' pages are
// immediately reclaimable.
func (st *Store) Cleanup(ctx context.Context, c *blob.Client) error {
	var firstErr error
	for _, id := range st.blobs {
		if err := c.DeleteBlob(ctx, id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats exposes the store's segment counters.
func (st *Store) Stats() *metrics.ShuffleStats { return st.stats }

// AppendMap stores map mapID's encoded partitions (one per reducer):
// every partition's append is launched through the pipelined
// AppendAsync path before any is waited on, so one map keeps R appends
// in flight while nMaps maps do the same against every BLOB — the
// paper's concurrent-append workload, now load-bearing. Once all
// appends land, the map's segments publish to the index atomically: a
// reducer sees all of a map's segments or none, so a failed map
// attempt never leaks partial output.
func (st *Store) AppendMap(ctx context.Context, c *blob.Client, mapID uint64, parts [][]byte) error {
	if len(parts) != len(st.blobs) {
		return fmt.Errorf("shuffle: map %d produced %d partitions, store has %d", mapID, len(parts), len(st.blobs))
	}
	start := time.Now()
	defer func() { st.stats.ObserveAppendLatency(time.Since(start)) }()
	ctx, sp := obs.StartSpan(ctx, "shuffle.appendMap")
	if sp != nil { // guard: varargs boxing allocates even for a nil span
		sp.Annotate("map=%d parts=%d", mapID, len(parts))
	}
	defer func() { sp.End(nil) }()
	segs := make([]Segment, len(parts))
	pending := make([]*blob.PendingWrite, len(parts))
	for p, data := range parts {
		b := c.Handle(st.blobs[p], st.pageSize)
		pw, err := b.AppendAsync(ctx, padToPage(data, st.pageSize))
		if err != nil {
			return fmt.Errorf("shuffle: append map %d part %d: %w", mapID, p, err)
		}
		pending[p] = pw
		res := pw.Result()
		segs[p] = Segment{
			Job:  st.jobID,
			Map:  mapID,
			Part: uint64(p),
			Off:  res.Start,
			Len:  uint64(len(data)),
			Ver:  res.Ver,
			Sum:  crc32.ChecksumIEEE(data),
		}
	}
	for p, pw := range pending {
		if _, err := pw.Wait(ctx); err != nil {
			// Already-landed partitions of this attempt stay unpublished
			// garbage in their BLOBs; the retried attempt re-appends.
			return fmt.Errorf("shuffle: append map %d part %d: %w", mapID, p, err)
		}
	}
	if st.Publish(mapID, segs) {
		for _, s := range segs {
			st.stats.AddAppended(s.Len)
		}
	}
	return nil
}

// Fetch reads one published segment through c — WaitPublished pins the
// segment's version, ReadAt streams its pages through the client's
// shared cache — and verifies its checksum. Each distinct segment
// counts toward the fetched statistics once: re-executed reduce
// attempts re-read their whole partition, and those re-reads must not
// inflate the counters.
func (st *Store) Fetch(ctx context.Context, c *blob.Client, seg Segment) ([]byte, error) {
	start := time.Now()
	defer func() { st.stats.ObserveFetchLatency(time.Since(start)) }()
	ctx, sp := obs.StartSpan(ctx, "shuffle.fetch")
	if sp != nil {
		sp.Annotate("map=%d part=%d len=%d", seg.Map, seg.Part, seg.Len)
	}
	defer func() { sp.End(nil) }()
	b := c.Handle(st.blobs[seg.Part], st.pageSize)
	// Pin the segment's version for the duration of the fetch so the
	// garbage collector can never reclaim intermediate data under an
	// active reducer (the lease expiring covers a crashed one). The
	// pin is per segment, not per partition: the only GC threat to an
	// intermediate BLOB is DeleteBlob (NewBlobStore opts every
	// partition out of retention), and under deletion only versions at
	// or above the pin survive — a long-lived partition pin would have
	// to sit at version 1 and be lease-renewed for the whole job to
	// protect re-read attempts, costing more machinery than two RPCs
	// per segment.
	if err := b.Pin(ctx, seg.Ver, 0); err != nil {
		return nil, fmt.Errorf("shuffle: pin segment map %d part %d: %w", seg.Map, seg.Part, err)
	}
	defer func() {
		//lint:detached the segment unpin must reach the version manager even after the reduce's ctx died, or reclaim stalls a full lease
		uctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := b.Unpin(uctx, seg.Ver); err != nil {
			// The pin's lease expiry still unblocks GC eventually; log
			// so a stuck-reclaim investigation can see the leak.
			obs.Log.Infof("shuffle: unpin map %d part %d ver %d: %v", seg.Map, seg.Part, seg.Ver, err)
		}
	}()
	if _, err := b.WaitPublished(ctx, seg.Ver); err != nil {
		return nil, fmt.Errorf("shuffle: segment map %d part %d not published: %w", seg.Map, seg.Part, err)
	}
	data, err := b.ReadAt(ctx, seg.Ver, seg.Off, seg.Len)
	if err != nil {
		return nil, fmt.Errorf("shuffle: read segment map %d part %d: %w", seg.Map, seg.Part, err)
	}
	if sum := crc32.ChecksumIEEE(data); sum != seg.Sum {
		return nil, fmt.Errorf("shuffle: segment map %d part %d checksum mismatch: %08x != %08x", seg.Map, seg.Part, sum, seg.Sum)
	}
	key := segKey{seg.Map, seg.Part}
	st.fetchMu.Lock()
	first := !st.fetched[key]
	st.fetched[key] = true
	st.fetchMu.Unlock()
	if first {
		st.stats.AddFetched(seg.Len)
	}
	return data, nil
}

// MarkRecovered counts seg as recovered intermediate data — served to
// a reducer after its producing tracker died, the serving a memory
// shuffle could not have made. Each distinct segment counts at most
// once, no matter how many reduce attempts re-read it.
func (st *Store) MarkRecovered(seg Segment) {
	key := segKey{seg.Map, seg.Part}
	st.fetchMu.Lock()
	first := !st.recovered[key]
	st.recovered[key] = true
	st.fetchMu.Unlock()
	if first {
		st.stats.AddRecovered()
	}
}

// padToPage pads data with zeros to a whole number of pageSize-byte
// pages, so every append starts page-aligned: concurrent appenders
// never share a page slot and never pay BlobSeer's serialized boundary
// merge — the same trade the shared-output record writer makes (GFS
// record-append discipline). Segments record the unpadded length, so
// the padding is invisible to readers.
func padToPage(data []byte, pageSize uint64) []byte {
	rem := uint64(len(data)) % pageSize
	if rem == 0 && len(data) > 0 {
		return data
	}
	return append(data, make([]byte, pageSize-rem)...)
}
