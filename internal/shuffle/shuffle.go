// Package shuffle is the durable map-output store of the Map/Reduce
// framework: the layer between the framework and the BLOB store that
// turns the shuffle — Hadoop's hottest coordination-bound data path —
// into the paper's flagship concurrent-append workload.
//
// Two backends implement the intermediate-data contract:
//
//   - Memory — the classic Hadoop behaviour: each tasktracker keeps its
//     finished map outputs in process memory and serves them over the
//     shuffle RPC; a dead tracker loses its outputs and the jobtracker
//     must re-execute the maps ("map output lost").
//   - Blob — the new subsystem: every map task appends its encoded
//     partition for reducer r to a shared per-partition intermediate
//     BLOB through the pipelined AppendAsync path (nMaps concurrent
//     appenders per BLOB), then publishes a small segment index entry
//     (job, map, offset, length, checksum) so reducers can locate each
//     map's contribution. Published segments are immutable, replicated
//     BlobSeer data: reducers stream them through the client's shared
//     page cache as they appear — shuffle overlaps the map phase — and
//     tracker death never loses intermediate data, so map re-execution
//     becomes a non-event.
//
// The Memory backend lives in internal/mapreduce (it is the trackers'
// RPC store); this package provides the Blob backend: the segment
// Index and the blob-backed Store.
package shuffle

import (
	"fmt"

	"blobseer/internal/blob"
)

// Backend selects a job's intermediate-data store.
type Backend int

// Shuffle backends.
const (
	// Memory: map outputs live in their tracker's process memory and
	// are served over the shuffle RPC (lost when the tracker dies).
	Memory Backend = iota
	// Blob: map outputs are concurrent appends to shared per-partition
	// intermediate BLOBs, durable across tracker death.
	Blob
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case Memory:
		return "memory"
	case Blob:
		return "blob"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend maps a flag value to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "memory":
		return Memory, nil
	case "blob":
		return Blob, nil
	default:
		return Memory, fmt.Errorf("shuffle: unknown backend %q (want memory or blob)", s)
	}
}

// ClientSource is the capability a file-system mount must expose for
// the Blob backend: access to the BlobSeer client beneath it. BSFS
// mounts implement it; write-once backends like HDFS do not, which is
// how a blob-shuffle job on HDFS fails with a clear error.
type ClientSource interface {
	BlobClient() *blob.Client
}

// Segment locates one map task's sorted, encoded partition inside a
// per-partition intermediate BLOB. Segments are immutable once
// published: the (version, offset, length) triple addresses bytes that
// BlobSeer will never change.
type Segment struct {
	// Job and Map identify the producing task; Part is the reduce
	// partition (and the index of the intermediate BLOB).
	Job  uint64
	Map  uint64
	Part uint64
	// Off and Len locate the encoded partition inside the BLOB.
	// Appends are padded to whole pages (see padToPage); Len is the
	// unpadded payload length.
	Off uint64
	Len uint64
	// Ver is the BLOB version the append produced; the segment is
	// readable once that version publishes.
	Ver uint64
	// Sum is the CRC-32 (IEEE) checksum of the payload.
	Sum uint32
}
