package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, math.MaxUint64}
	for _, v := range cases {
		b := AppendUvarint(nil, v)
		r := NewReader(b)
		got := r.Uvarint()
		if err := r.Err(); err != nil {
			t.Fatalf("Uvarint(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("Uvarint round trip: got %d want %d", got, v)
		}
		if r.Len() != 0 {
			t.Errorf("Uvarint(%d): %d trailing bytes", v, r.Len())
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		b := AppendVarint(nil, v)
		r := NewReader(b)
		if got := r.Varint(); got != v || r.Err() != nil {
			t.Errorf("Varint(%d): got %d err %v", v, got, r.Err())
		}
	}
}

func TestFixedWidthRoundTrip(t *testing.T) {
	b := AppendUint32(nil, 0xdeadbeef)
	b = AppendUint64(b, 0x0123456789abcdef)
	b = AppendFloat64(b, 3.14159)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	r := NewReader(b)
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32: got %#x", got)
	}
	if got := r.Uint64(); got != 0x0123456789abcdef {
		t.Errorf("Uint64: got %#x", got)
	}
	if got := r.Float64(); got != 3.14159 {
		t.Errorf("Float64: got %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool: wrong values")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("%d trailing bytes", r.Len())
	}
}

func TestBytesAliasAndCopy(t *testing.T) {
	src := []byte("hello, pages")
	b := AppendBytes(nil, src)
	b = AppendBytes(b, nil)

	r := NewReader(b)
	alias := r.Bytes()
	if !bytes.Equal(alias, src) {
		t.Fatalf("Bytes: got %q", alias)
	}
	empty := r.Bytes()
	if len(empty) != 0 {
		t.Fatalf("empty Bytes: got %q", empty)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}

	r2 := NewReader(b)
	cp := r2.BytesCopy()
	b[len(b)-len(src)-1]++ // corrupt underlying buffer of the alias region? ensure copy is independent
	_ = alias
	if !bytes.Equal(cp, src) {
		t.Fatalf("BytesCopy not independent: %q", cp)
	}
}

func TestStringSliceRoundTrip(t *testing.T) {
	in := []string{"", "a", "provider-17", "métadonnées"}
	b := AppendStringSlice(nil, in)
	r := NewReader(b)
	out := r.StringSlice()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(out) != len(in) {
		t.Fatalf("len: got %d want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("elem %d: got %q want %q", i, out[i], in[i])
		}
	}
}

func TestUint64SliceRoundTrip(t *testing.T) {
	in := []uint64{0, 5, 1 << 50}
	b := AppendUint64Slice(nil, in)
	r := NewReader(b)
	out := r.Uint64Slice()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("elem %d: got %d want %d", i, out[i], in[i])
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	b := AppendError(nil, nil)
	b = AppendError(b, errors.New("boom: disk on fire"))
	r := NewReader(b)
	if err := r.Error(); err != nil {
		t.Fatalf("nil error round trip: got %v", err)
	}
	err := r.Error()
	if err == nil || err.Error() != "boom: disk on fire" {
		t.Fatalf("error round trip: got %v", err)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestRemoteErrorIs(t *testing.T) {
	sentinel := errors.New("bsfs: file exists")
	remote := RemoteError(sentinel.Error())
	if !errors.Is(remote, sentinel) {
		t.Error("errors.Is(remote, sentinel) = false")
	}
	if errors.Is(remote, errors.New("other")) {
		t.Error("errors.Is matched unrelated error")
	}
}

func TestShortBufferErrors(t *testing.T) {
	r := NewReader([]byte{0x05, 'a'}) // claims 5 bytes, has 1
	if p := r.Bytes(); p != nil {
		t.Errorf("Bytes on short buffer: got %q", p)
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("err = %v, want ErrShortBuffer", r.Err())
	}
	// Subsequent calls stay failed and do not panic.
	if v := r.Uvarint(); v != 0 {
		t.Errorf("Uvarint after failure: got %d", v)
	}
}

func TestTooLargeRejected(t *testing.T) {
	b := AppendUvarint(nil, MaxBytesLen+1)
	r := NewReader(b)
	if p := r.Bytes(); p != nil {
		t.Errorf("got %d bytes", len(p))
	}
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", r.Err())
	}
}

func TestTruncationNeverPanics(t *testing.T) {
	// Every prefix of a valid encoding must fail cleanly, not panic.
	full := AppendString(nil, "some string")
	full = AppendUint64Slice(full, []uint64{1, 2, 3})
	full = AppendUint64(full, 42)
	for i := 0; i < len(full); i++ {
		r := NewReader(full[:i])
		_ = r.String()
		_ = r.Uint64Slice()
		_ = r.Uint64()
		if i < len(full) && r.Err() == nil && r.Len() == 0 {
			// Some prefixes decode fine (e.g. shorter string); that is OK
			// as long as nothing panicked.
			continue
		}
	}
}

// quick-check property: arbitrary field sequences round-trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, s string, p []byte, bl bool) bool {
		b := AppendUvarint(nil, u)
		b = AppendVarint(b, i)
		b = AppendString(b, s)
		b = AppendBytes(b, p)
		b = AppendBool(b, bl)
		r := NewReader(b)
		gu := r.Uvarint()
		gi := r.Varint()
		gs := r.String()
		gp := r.BytesCopy()
		gb := r.Bool()
		if r.Err() != nil || r.Len() != 0 {
			return false
		}
		return gu == u && gi == i && gs == s && bytes.Equal(gp, p) && gb == bl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUvarintAny(t *testing.T) {
	f := func(v uint64) bool {
		r := NewReader(AppendUvarint(nil, v))
		return r.Uvarint() == v && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendBytes4K(b *testing.B) {
	p := make([]byte, 4096)
	buf := make([]byte, 0, 5000)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendBytes(buf[:0], p)
	}
}

func BenchmarkReaderBytes4K(b *testing.B) {
	p := make([]byte, 4096)
	buf := AppendBytes(nil, p)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		if r.Bytes() == nil {
			b.Fatal("nil")
		}
	}
}
