package wire

// TraceContext is the compact trace context every RPC request frame
// carries: the trace id and the caller's span id, each a uvarint. An
// untraced call encodes as two zero bytes, so the steady-state cost of
// the tracing plane on the wire is two bytes per request.
type TraceContext struct {
	Trace uint64 // 0 = untraced
	Span  uint64 // caller's span id (the remote span's parent)
}

// AppendTo implements Marshaler.
func (t TraceContext) AppendTo(b []byte) []byte {
	b = AppendUvarint(b, t.Trace)
	return AppendUvarint(b, t.Span)
}

// DecodeFrom implements Unmarshaler.
func (t *TraceContext) DecodeFrom(r *Reader) error {
	t.Trace = r.Uvarint()
	t.Span = r.Uvarint()
	return r.Err()
}
