// Package wire implements the compact binary encoding used by every RPC
// message in the system. It is a hand-rolled, reflection-free codec:
// unsigned varints for integers, length-prefixed byte strings, and a
// one-byte presence marker for optional fields. Messages implement
// Marshaler/Unmarshaler and are framed by the rpc package.
//
// The format is deliberately simple so that encoding cost never shows up
// in the experiments: the data path (pages) is carried as raw byte
// slices with a single length prefix.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Common decoding errors.
var (
	ErrShortBuffer = errors.New("wire: short buffer")
	ErrOverflow    = errors.New("wire: varint overflows 64 bits")
	ErrTooLarge    = errors.New("wire: length prefix exceeds limit")
)

// MaxBytesLen bounds any single length-prefixed field. It protects
// decoders against corrupt frames; pages are far below this.
const MaxBytesLen = 1 << 30

// Marshaler is implemented by every wire message.
type Marshaler interface {
	// AppendTo appends the encoded form of the message to b and
	// returns the extended slice.
	AppendTo(b []byte) []byte
}

// Unmarshaler is implemented by every wire message.
type Unmarshaler interface {
	// DecodeFrom decodes the message from a Reader.
	DecodeFrom(r *Reader) error
}

// Message combines both directions; every RPC payload satisfies it.
type Message interface {
	Marshaler
	Unmarshaler
}

// Marshal encodes m into a fresh buffer.
func Marshal(m Marshaler) []byte {
	return m.AppendTo(nil)
}

// Unmarshal decodes m from buf, requiring the whole buffer be consumed.
func Unmarshal(buf []byte, m Unmarshaler) error {
	r := NewReader(buf)
	if err := m.DecodeFrom(r); err != nil {
		return err
	}
	if r.Len() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after message", r.Len())
	}
	return nil
}

//
// Append-style encoders.
//

// AppendUvarint appends v in unsigned LEB128 form.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v in zigzag form.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendUint32 appends v as a fixed 4-byte little-endian value.
func AppendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendUint64 appends v as a fixed 8-byte little-endian value.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendFloat64 appends v in IEEE-754 bits.
func AppendFloat64(b []byte, v float64) []byte {
	return AppendUint64(b, math.Float64bits(v))
}

// AppendBool appends v as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendBytes appends a uvarint length prefix followed by p.
func AppendBytes(b, p []byte) []byte {
	b = AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends a uvarint length prefix followed by s.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendStringSlice appends a count followed by each string.
func AppendStringSlice(b []byte, ss []string) []byte {
	b = AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = AppendString(b, s)
	}
	return b
}

// AppendUint64Slice appends a count followed by each value as uvarint.
func AppendUint64Slice(b []byte, vs []uint64) []byte {
	b = AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = AppendUvarint(b, v)
	}
	return b
}

// AppendError encodes an error as a presence byte plus message text.
// A nil error is a single zero byte.
func AppendError(b []byte, err error) []byte {
	if err == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	return AppendString(b, err.Error())
}

//
// Reader: sequential decoder over a byte slice.
//

// Reader decodes wire-encoded fields from a buffer. Methods record the
// first error and become no-ops afterwards, so call sites can decode a
// whole struct and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	switch {
	case n > 0:
		r.off += n
		return v
	case n == 0:
		r.fail(ErrShortBuffer)
	default:
		r.fail(ErrOverflow)
	}
	return 0
}

// Varint decodes a zigzag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	switch {
	case n > 0:
		r.off += n
		return v
	case n == 0:
		r.fail(ErrShortBuffer)
	default:
		r.fail(ErrOverflow)
	}
	return 0
}

// Uint32 decodes a fixed 4-byte value.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 4 {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Uint64 decodes a fixed 8-byte value.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 8 {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Float64 decodes an IEEE-754 value.
func (r *Reader) Float64() float64 {
	return math.Float64frombits(r.Uint64())
}

// Bool decodes a single byte as a boolean.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Len() < 1 {
		r.fail(ErrShortBuffer)
		return false
	}
	v := r.buf[r.off]
	r.off++
	return v != 0
}

// Bytes decodes a length-prefixed byte string. The returned slice
// aliases the Reader's buffer; callers that retain it must copy.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxBytesLen {
		r.fail(ErrTooLarge)
		return nil
	}
	if uint64(r.Len()) < n {
		r.fail(ErrShortBuffer)
		return nil
	}
	p := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return p
}

// BytesCopy decodes a length-prefixed byte string into fresh storage.
func (r *Reader) BytesCopy() []byte {
	p := r.Bytes()
	if p == nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	return string(r.Bytes())
}

// StringSlice decodes a count-prefixed string slice.
func (r *Reader) StringSlice() []string {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxBytesLen {
		r.fail(ErrTooLarge)
		return nil
	}
	ss := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		ss = append(ss, r.String())
		if r.err != nil {
			return nil
		}
	}
	return ss
}

// Uint64Slice decodes a count-prefixed uvarint slice.
func (r *Reader) Uint64Slice() []uint64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxBytesLen {
		r.fail(ErrTooLarge)
		return nil
	}
	vs := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		vs = append(vs, r.Uvarint())
		if r.err != nil {
			return nil
		}
	}
	return vs
}

// Error decodes an error encoded by AppendError. A decoded non-nil
// error is returned as a RemoteError.
func (r *Reader) Error() error {
	if !r.Bool() {
		return nil
	}
	msg := r.String()
	if r.err != nil {
		return nil
	}
	return RemoteError(msg)
}

// CountPair is a generic two-counter response message used by several
// services' stats endpoints.
type CountPair struct{ A, B uint64 }

// AppendTo implements Marshaler.
func (m *CountPair) AppendTo(b []byte) []byte {
	b = AppendUvarint(b, m.A)
	return AppendUvarint(b, m.B)
}

// DecodeFrom implements Unmarshaler.
func (m *CountPair) DecodeFrom(r *Reader) error {
	m.A = r.Uvarint()
	m.B = r.Uvarint()
	return r.Err()
}

// RemoteError is an error message that crossed the wire. The concrete
// error type is lost in transit; services that need programmatic
// dispatch compare against sentinel message prefixes.
type RemoteError string

// Error implements the error interface.
func (e RemoteError) Error() string { return string(e) }

// Is reports message equality so errors.Is works across the wire for
// sentinel errors re-created on the caller side.
func (e RemoteError) Is(target error) bool {
	return target != nil && target.Error() == string(e)
}
