package bsfs

import (
	"bytes"
	"errors"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/dfs"
	"blobseer/internal/transport"
)

// TestNamespaceRecoversFromJournal tears a durable deployment down and
// re-deploys on the same cluster: the namespace manager reopens
// namespace.log and must serve the exact pre-shutdown tree — sizes,
// content, a rename, and a delete all included. This is the filesystem
// half of the durable metadata plane; the version-manager half is
// covered by the blob package's journal tests.
func TestNamespaceRecoversFromJournal(t *testing.T) {
	cluster, err := blob.NewCluster(transport.NewMemNet(), blob.ClusterConfig{
		Providers:     6,
		MetaProviders: 3,
		VMShards:      2,
		JournalDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	d, err := Deploy(cluster, 1024)
	if err != nil {
		t.Fatal(err)
	}

	fs := d.Mount("recovery-cli")
	kept := pattern(3, 5000)
	if err := fs.Mkdir(ctx, "/warehouse/stage"); err != nil {
		t.Fatal(err)
	}
	if err := dfs.WriteFile(ctx, fs, "/warehouse/stage/part-0", kept); err != nil {
		t.Fatal(err)
	}
	if err := dfs.WriteFile(ctx, fs, "/warehouse/stage/part-1", pattern(4, 700)); err != nil {
		t.Fatal(err)
	}
	if err := dfs.WriteFile(ctx, fs, "/scratch/tmp-0", pattern(5, 100)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(ctx, "/warehouse/stage/part-0", "/warehouse/final"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(ctx, "/scratch/tmp-0"); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Second deployment on the same cluster: nothing in memory carries
	// over, the tree comes back from the journal alone.
	d2, err := Deploy(cluster, 1024)
	if err != nil {
		t.Fatalf("redeploy on journaled cluster: %v", err)
	}
	defer d2.Close()
	fs2 := mount(t, d2, "recovery-cli-2")

	got, err := dfs.ReadAll(ctx, fs2, "/warehouse/final")
	if err != nil {
		t.Fatalf("read renamed file after recovery: %v", err)
	}
	if !bytes.Equal(got, kept) {
		t.Fatal("renamed file content diverged after recovery")
	}
	fi, err := fs2.Stat(ctx, "/warehouse/stage/part-1")
	if err != nil || fi.Size != 700 {
		t.Fatalf("Stat part-1 after recovery = %+v, %v", fi, err)
	}
	if _, err := fs2.Stat(ctx, "/warehouse/stage/part-0"); !errors.Is(err, dfs.ErrNotExist) {
		t.Fatalf("rename source still present after recovery: %v", err)
	}
	if _, err := fs2.Stat(ctx, "/scratch/tmp-0"); !errors.Is(err, dfs.ErrNotExist) {
		t.Fatalf("deleted file resurrected by recovery: %v", err)
	}
	ls, err := fs2.List(ctx, "/warehouse/stage")
	if err != nil || len(ls) != 1 || ls[0].Path != "/warehouse/stage/part-1" {
		t.Fatalf("List after recovery = %+v, %v", ls, err)
	}
}
