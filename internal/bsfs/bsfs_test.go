package bsfs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/dfs"
	"blobseer/internal/transport"
)

var ctx = context.Background()

// newDeployment spins up BlobSeer + BSFS with small blocks for tests.
func newDeployment(t *testing.T, blockSize uint64) *Deployment {
	t.Helper()
	cluster, err := blob.NewCluster(transport.NewMemNet(), blob.ClusterConfig{
		Providers: 6, MetaProviders: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	d, err := Deploy(cluster, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func mount(t *testing.T, d *Deployment, host string) *FS {
	t.Helper()
	fs := d.Mount(host)
	t.Cleanup(func() { fs.Close() })
	return fs
}

func pattern(tag byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(int(tag)*37 + i*11)
	}
	return out
}

func TestCreateWriteRead(t *testing.T) {
	d := newDeployment(t, 1024)
	fs := mount(t, d, "cli")
	data := pattern(1, 5000) // crosses block boundaries, partial tail
	if err := dfs.WriteFile(ctx, fs, "/data/input.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := dfs.ReadAll(ctx, fs, "/data/input.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch")
	}
	fi, err := fs.Stat(ctx, "/data/input.txt")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 5000 || fi.IsDir {
		t.Errorf("Stat = %+v", fi)
	}
}

func TestCreateExclusive(t *testing.T) {
	d := newDeployment(t, 512)
	fs := mount(t, d, "cli")
	if err := dfs.WriteFile(ctx, fs, "/f", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, "/f"); !errors.Is(err, dfs.ErrExists) {
		t.Errorf("second create: %v", err)
	}
}

func TestOpenMissing(t *testing.T) {
	d := newDeployment(t, 512)
	fs := mount(t, d, "cli")
	if _, err := fs.Open(ctx, "/nope"); !errors.Is(err, dfs.ErrNotExist) {
		t.Errorf("open missing: %v", err)
	}
	if _, err := fs.Stat(ctx, "/nope"); !errors.Is(err, dfs.ErrNotExist) {
		t.Errorf("stat missing: %v", err)
	}
}

func TestAppendGrowsFile(t *testing.T) {
	d := newDeployment(t, 512)
	fs := mount(t, d, "cli")
	if err := dfs.WriteFile(ctx, fs, "/log", pattern(1, 700)); err != nil {
		t.Fatal(err)
	}
	w, err := fs.Append(ctx, "/log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(pattern(2, 900)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := dfs.ReadAll(ctx, fs, "/log")
	if err != nil {
		t.Fatal(err)
	}
	want := append(pattern(1, 700), pattern(2, 900)...)
	if !bytes.Equal(got, want) {
		t.Fatal("append content mismatch")
	}
}

func TestAppendCreatesFile(t *testing.T) {
	d := newDeployment(t, 512)
	fs := mount(t, d, "cli")
	w, err := fs.Append(ctx, "/fresh")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := dfs.ReadAll(ctx, fs, "/fresh")
	if err != nil || string(got) != "hello" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestConcurrentAppendersSharedFile(t *testing.T) {
	// The paper's modified-Hadoop pattern: many writers append blocks
	// to one shared file; every block must appear exactly once.
	d := newDeployment(t, 256)
	const writers = 8
	const blocksPerWriter = 4

	// Create the shared file up front.
	fs0 := mount(t, d, "host-0")
	w0, err := fs0.Create(ctx, "/shared/out")
	if err != nil {
		t.Fatal(err)
	}
	if err := w0.Close(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fs := d.Mount(fmt.Sprintf("host-%d", i))
			defer fs.Close()
			w, err := fs.Append(ctx, "/shared/out")
			if err != nil {
				errs <- err
				return
			}
			for blk := 0; blk < blocksPerWriter; blk++ {
				if _, err := w.Write(pattern(byte(i*blocksPerWriter+blk+1), 256)); err != nil {
					errs <- err
					return
				}
			}
			if err := w.Close(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got, err := dfs.ReadAll(ctx, fs0, "/shared/out")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*blocksPerWriter*256 {
		t.Fatalf("size = %d", len(got))
	}
	seen := map[byte]bool{}
	for off := 0; off < len(got); off += 256 {
		blk := got[off : off+256]
		var tag byte
		found := false
		for k := 1; k <= writers*blocksPerWriter; k++ {
			if bytes.Equal(blk, pattern(byte(k), 256)) {
				tag, found = byte(k), true
				break
			}
		}
		if !found {
			t.Fatalf("block at %d matches no writer", off)
		}
		if seen[tag] {
			t.Fatalf("block %d duplicated", tag)
		}
		seen[tag] = true
	}
}

func TestReaderSnapshotAndRefresh(t *testing.T) {
	d := newDeployment(t, 256)
	fs := mount(t, d, "cli")
	if err := dfs.WriteFile(ctx, fs, "/log", pattern(1, 512)); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open(ctx, "/log")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != 512 {
		t.Fatalf("Size = %d", r.Size())
	}

	// Append while the reader holds its snapshot.
	w, err := fs.Append(ctx, "/log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(pattern(2, 512)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Snapshot still sees the old size.
	if r.Size() != 512 {
		t.Errorf("snapshot size changed to %d", r.Size())
	}
	buf := make([]byte, 512)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pattern(1, 512)) {
		t.Error("snapshot content wrong")
	}
	if _, err := r.Read(buf); err != io.EOF {
		t.Errorf("read past snapshot: %v", err)
	}

	// Refresh sees the appended data and can keep reading — the
	// §5 pipeline scenario (readers follow appenders).
	size, err := r.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if size != 1024 {
		t.Fatalf("refreshed size = %d", size)
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pattern(2, 512)) {
		t.Error("refreshed content wrong")
	}
}

func TestReadAt(t *testing.T) {
	d := newDeployment(t, 256)
	fs := mount(t, d, "cli")
	data := pattern(3, 1000)
	if err := dfs.WriteFile(ctx, fs, "/f", data); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 100)
	if _, err := r.ReadAt(buf, 450); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[450:550]) {
		t.Error("ReadAt content mismatch")
	}
	// Tail read returns io.EOF with partial data.
	n, err := r.ReadAt(buf, 950)
	if n != 50 || err != io.EOF {
		t.Errorf("tail ReadAt = %d, %v", n, err)
	}
}

func TestListAndMkdir(t *testing.T) {
	d := newDeployment(t, 256)
	fs := mount(t, d, "cli")
	if err := fs.Mkdir(ctx, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := dfs.WriteFile(ctx, fs, "/a/b/f1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := dfs.WriteFile(ctx, fs, "/a/b/f2", []byte("yy")); err != nil {
		t.Fatal(err)
	}
	infos, err := fs.List(ctx, "/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("List = %+v", infos)
	}
	if infos[0].Path != "/a/b/f1" || infos[1].Path != "/a/b/f2" {
		t.Errorf("List order = %v, %v", infos[0].Path, infos[1].Path)
	}
	// Listing a file fails.
	if _, err := fs.List(ctx, "/a/b/f1"); !errors.Is(err, dfs.ErrNotDir) {
		t.Errorf("List(file) = %v", err)
	}
	// Root listing includes /a.
	root, err := fs.List(ctx, "/")
	if err != nil || len(root) != 1 || root[0].Path != "/a" {
		t.Errorf("List(/) = %v, %v", root, err)
	}
}

func TestRename(t *testing.T) {
	d := newDeployment(t, 256)
	fs := mount(t, d, "cli")
	if err := dfs.WriteFile(ctx, fs, "/tmp/part-0", pattern(1, 300)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(ctx, "/tmp/part-0", "/out/part-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(ctx, "/tmp/part-0"); !errors.Is(err, dfs.ErrNotExist) {
		t.Errorf("src after rename: %v", err)
	}
	got, err := dfs.ReadAll(ctx, fs, "/out/part-0")
	if err != nil || !bytes.Equal(got, pattern(1, 300)) {
		t.Fatalf("dst after rename: %v", err)
	}
	if err := fs.Rename(ctx, "/missing", "/x"); !errors.Is(err, dfs.ErrNotExist) {
		t.Errorf("rename missing: %v", err)
	}
}

func TestDelete(t *testing.T) {
	d := newDeployment(t, 256)
	fs := mount(t, d, "cli")
	if err := dfs.WriteFile(ctx, fs, "/dir/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(ctx, "/dir"); !errors.Is(err, dfs.ErrNotEmpty) {
		t.Errorf("delete non-empty dir: %v", err)
	}
	if err := fs.Delete(ctx, "/dir/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(ctx, "/dir"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(ctx, "/dir"); !errors.Is(err, dfs.ErrNotExist) {
		t.Errorf("delete missing: %v", err)
	}
}

func TestBlockLocations(t *testing.T) {
	d := newDeployment(t, 256)
	fs := mount(t, d, "cli")
	if err := dfs.WriteFile(ctx, fs, "/f", pattern(1, 256*4+100)); err != nil {
		t.Fatal(err)
	}
	locs, err := fs.BlockLocations(ctx, "/f", 0, 256*5)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 5 {
		t.Fatalf("got %d blocks", len(locs))
	}
	var total uint64
	for i, l := range locs {
		if len(l.Hosts) == 0 {
			t.Errorf("block %d has no hosts", i)
		}
		if l.Offset != uint64(i)*256 {
			t.Errorf("block %d offset = %d", i, l.Offset)
		}
		total += l.Length
	}
	if total != 256*4+100 {
		t.Errorf("total length = %d", total)
	}
}

func TestMetadataEntriesCountsNamespaceOnly(t *testing.T) {
	d := newDeployment(t, 256)
	fs := mount(t, d, "cli")
	base, err := fs.MetadataEntries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// One file with many blocks adds exactly one namespace entry
	// (plus its parent dir): block metadata lives in the DHT.
	if err := dfs.WriteFile(ctx, fs, "/big/file", pattern(1, 256*40)); err != nil {
		t.Fatal(err)
	}
	after, err := fs.MetadataEntries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after-base != 2 {
		t.Errorf("entries grew by %d, want 2 (dir + file)", after-base)
	}
}

func TestWriterAfterClose(t *testing.T) {
	d := newDeployment(t, 256)
	fs := mount(t, d, "cli")
	w, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("late")); err == nil {
		t.Error("write after close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestEmptyFile(t *testing.T) {
	d := newDeployment(t, 256)
	fs := mount(t, d, "cli")
	if err := dfs.WriteFile(ctx, fs, "/empty", nil); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat(ctx, "/empty")
	if err != nil || fi.Size != 0 {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
	got, err := dfs.ReadAll(ctx, fs, "/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
}

func TestLargeStreamingCopy(t *testing.T) {
	d := newDeployment(t, 1024)
	fs := mount(t, d, "cli")
	data := pattern(5, 64<<10)
	if err := dfs.WriteFile(ctx, fs, "/big", data); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open(ctx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out bytes.Buffer
	if _, err := io.Copy(&out, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("streamed copy mismatch")
	}
}

//
// Pipelined-writer tests: up to Config.WriteDepth blocks in flight.
//

// TestPipelinedWriterKeepsBlockOrder writes a many-block file through a
// deep pipeline; the file must read back exactly in write order, since
// version assignment stays serialized in the writer's goroutine.
func TestPipelinedWriterKeepsBlockOrder(t *testing.T) {
	d := newDeployment(t, 512)
	d.WriteDepth = 8
	fs := mount(t, d, "cli")
	data := pattern(3, 20*512+100) // 20 full blocks plus a partial tail
	if err := dfs.WriteFile(ctx, fs, "/pipelined", data); err != nil {
		t.Fatal(err)
	}
	got, err := dfs.ReadAll(ctx, fs, "/pipelined")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pipelined write content mismatch")
	}
}

// TestPipelinedConcurrentAppendersRecordsIntact runs several pipelined
// writers appending block-sized records to one shared file: every
// record must appear exactly once, intact, and each writer's records
// must keep their relative order.
func TestPipelinedConcurrentAppendersRecordsIntact(t *testing.T) {
	const writers, records, block = 8, 12, 256
	d := newDeployment(t, block)
	d.WriteDepth = 4
	setup := mount(t, d, "cli")
	if err := dfs.WriteFile(ctx, setup, "/shared", nil); err != nil {
		t.Fatal(err)
	}
	mounts := make([]*FS, writers)
	for i := range mounts {
		mounts[i] = mount(t, d, fmt.Sprintf("w%d", i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w, err := mounts[wi].Append(ctx, "/shared")
			if err != nil {
				errs <- err
				return
			}
			for ri := 0; ri < records; ri++ {
				rec := make([]byte, block)
				for k := range rec {
					rec[k] = byte(wi*records + ri)
				}
				if _, err := w.Write(rec); err != nil {
					errs <- err
					w.Close()
					return
				}
			}
			if err := w.Close(); err != nil {
				errs <- err
			}
		}(wi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got, err := dfs.ReadAll(ctx, setup, "/shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*records*block {
		t.Fatalf("file size = %d, want %d", len(got), writers*records*block)
	}
	seen := make(map[byte]int)   // record tag -> occurrences
	lastRec := make(map[int]int) // writer -> last record index seen
	for off := 0; off < len(got); off += block {
		tag := got[off]
		for k := 1; k < block; k++ {
			if got[off+k] != tag {
				t.Fatalf("record at %d torn: byte %d is %d, want %d", off, k, got[off+k], tag)
			}
		}
		seen[tag]++
		wi, ri := int(tag)/records, int(tag)%records
		if last, ok := lastRec[wi]; ok && ri < last {
			t.Fatalf("writer %d record %d appeared after record %d", wi, ri, last)
		}
		lastRec[wi] = ri
	}
	if len(seen) != writers*records {
		t.Fatalf("distinct records = %d, want %d", len(seen), writers*records)
	}
	for tag, n := range seen {
		if n != 1 {
			t.Fatalf("record %d appeared %d times", tag, n)
		}
	}
}

// TestPipelinedFlushDrains verifies Flush blocks until every in-flight
// block is complete and the namespace size reflects all of them.
func TestPipelinedFlushDrains(t *testing.T) {
	const block = 256
	d := newDeployment(t, block)
	d.WriteDepth = 8
	fs := mount(t, d, "cli")
	w, err := fs.Create(ctx, "/drain")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	data := pattern(5, 6*block)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.(dfs.Flusher).Flush(); err != nil {
		t.Fatal(err)
	}
	// All six blocks completed, so they also all published (versions
	// publish in order) and the size is authoritative immediately.
	fi, err := fs.Stat(ctx, "/drain")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 6*block {
		t.Fatalf("size after Flush = %d, want %d", fi.Size, 6*block)
	}
	// The namespace's cached size was updated too (coalesced path).
	infos, err := fs.List(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	for _, fi := range infos {
		if fi.Path == "/drain" && fi.Size != 6*block {
			t.Fatalf("namespace size after Flush = %d, want %d", fi.Size, 6*block)
		}
	}
}

// TestPipelinedWriterErrorPropagation cancels the writer's context so
// in-flight data paths fail, and verifies the failure surfaces through
// Write and Close rather than being swallowed by the pipeline.
func TestPipelinedWriterErrorPropagation(t *testing.T) {
	const block = 256
	d := newDeployment(t, block)
	d.WriteDepth = 4
	fs := mount(t, d, "cli")
	cctx, cancel := context.WithCancel(ctx)
	w, err := fs.Create(cctx, "/doomed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(pattern(1, block)); err != nil {
		t.Fatal(err)
	}
	cancel()
	// The next full block cannot start (assignment fails on the dead
	// context) or a prior block's failure has already been recorded.
	deadline := time.Now().Add(5 * time.Second)
	var werr error
	for werr == nil && time.Now().Before(deadline) {
		_, werr = w.Write(pattern(2, block))
	}
	if werr == nil {
		t.Fatal("no error surfaced after context cancellation")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close reported success after a failed pipeline")
	}
}
