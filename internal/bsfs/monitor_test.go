package bsfs

import (
	"testing"
	"time"

	"blobseer/internal/dfs"
	"blobseer/internal/monitor"
)

// TestDeploymentMonitorWiring pins what Deploy registers on the
// monitor: one source per provider, per VM shard, and the namespace
// manager — and that reads and writes through a mount feed the heat
// sketches and the provider counters.
func TestDeploymentMonitorWiring(t *testing.T) {
	d := newDeployment(t, 1024)
	fs := mount(t, d, "cli")

	data := pattern(3, 6*1024) // six pages
	if err := dfs.WriteFile(ctx, fs, "/m/f", data); err != nil {
		t.Fatal(err)
	}
	got, err := dfs.ReadAll(ctx, fs, "/m/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("read %d bytes", len(got))
	}

	d.Monitor.CollectOnce()
	snap := d.Monitor.Snapshot(10)
	kinds := make(map[string]int)
	for _, c := range snap.Components {
		kinds[c.Kind]++
	}
	if kinds[monitor.KindProvider] != 6 || kinds[monitor.KindVMShard] != 1 || kinds[monitor.KindNamespace] != 1 {
		t.Fatalf("component kinds = %v", kinds)
	}
	if kinds[monitor.KindClient] != 1 {
		t.Fatalf("mount did not register a client source: %v", kinds)
	}

	if len(snap.HotWrites) == 0 {
		t.Error("write heat empty after writing pages")
	}
	if len(snap.HotReads) == 0 {
		t.Error("read heat empty after reading pages")
	}

	var pages float64
	for _, c := range snap.Components {
		if c.Kind == monitor.KindProvider {
			pages += c.Gauges["pages"]
		}
	}
	if pages < 6 {
		t.Errorf("providers report %v pages total, want >= 6", pages)
	}

	// Closing the mount unregisters its source.
	fs.Close()
	d.Monitor.CollectOnce()
	kinds = make(map[string]int)
	for _, c := range d.Monitor.Snapshot(0).Components {
		kinds[c.Kind]++
	}
	if kinds[monitor.KindClient] != 0 {
		t.Errorf("client source leaked after mount close: %v", kinds)
	}
}

// TestDeploymentHealth pins the component health checks: a fresh
// deployment is healthy with an unarmed-collector note; arming the
// monitor makes the collector check real; killing a VM shard degrades
// the report and names the shard.
func TestDeploymentHealth(t *testing.T) {
	d := newDeployment(t, 1024)

	rep := d.Health(ctx)
	if !rep.Healthy {
		t.Fatalf("fresh deployment unhealthy: %+v", rep)
	}
	byName := make(map[string]monitor.ComponentHealth)
	for _, c := range rep.Components {
		byName[c.Component] = c
	}
	if !byName["namespace"].Healthy || !byName["vmshard-0"].Healthy {
		t.Fatalf("components = %+v", rep.Components)
	}
	mon := byName["monitor"]
	if !mon.Healthy || mon.Detail == "" {
		t.Fatalf("unarmed monitor health = %+v (want healthy with a detail note)", mon)
	}

	// Armed and collecting: the freshness check passes for real.
	d.SetMonitorInterval(20 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for d.Monitor.Collections() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rep = d.Health(ctx)
	for _, c := range rep.Components {
		if c.Component == "monitor" && (!c.Healthy || c.Detail != "") {
			t.Fatalf("armed monitor health = %+v", c)
		}
	}

	// Kill the only VM shard: the stats ping times out and the report
	// degrades, naming the shard.
	if err := d.Blob.KillVM(0); err != nil {
		t.Fatal(err)
	}
	rep = d.Health(ctx)
	if rep.Healthy {
		t.Fatal("report healthy with a killed VM shard")
	}
	found := false
	for _, c := range rep.Components {
		if c.Component == "vmshard-0" {
			found = true
			if c.Healthy || c.Detail == "" {
				t.Fatalf("killed shard health = %+v", c)
			}
		}
	}
	if !found {
		t.Fatal("no vmshard-0 verdict in degraded report")
	}
}
