package bsfs

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"blobseer/internal/dfs"
)

// writeBlocks creates path holding n blocks of blockSize bytes.
func writeBlocks(t *testing.T, fs *FS, path string, blockSize, n int) []byte {
	t.Helper()
	data := pattern(21, blockSize*n)
	if err := dfs.WriteFile(ctx, fs, path, data); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSequentialReadWithReadahead(t *testing.T) {
	d := newDeployment(t, 512)
	// Deployment zero-values leave ReadDepth at the default (4) and the
	// cache at its default budget.
	fs := mount(t, d, "cli")
	data := writeBlocks(t, fs, "/ra/seq", 512, 8)

	f, err := fs.Open(ctx, "/ra/seq")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("sequential read through readahead mismatched")
	}
	f.Close() // drain outstanding prefetches before reading counters
	snap := fs.BlobClient().ReadStats().Snapshot()
	// The first block consumed fills the whole window, so at least
	// ReadDepth prefetches are scheduled over the scan. (How many beat
	// the reader to their block is timing-dependent; the invariant is
	// that racing reader and prefetcher never double-fetch a page.)
	if snap.Readahead < DefaultReadDepth {
		t.Errorf("readahead scheduled %d pages, want >= %d", snap.Readahead, DefaultReadDepth)
	}
	if snap.Misses != 8 || snap.ProviderFetches != 8 {
		t.Errorf("misses/fetches = %d/%d, want 8/8 (each block exactly once)",
			snap.Misses, snap.ProviderFetches)
	}
}

func TestReadaheadDisabled(t *testing.T) {
	d := newDeployment(t, 512)
	d.ReadDepth = -1 // synchronous reader
	fs := mount(t, d, "cli")
	data := writeBlocks(t, fs, "/ra/off", 512, 4)

	f, err := fs.Open(ctx, "/ra/off")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("synchronous read failed: %v", err)
	}
	if snap := fs.BlobClient().ReadStats().Snapshot(); snap.Readahead != 0 {
		t.Errorf("readahead = %d with ReadDepth disabled", snap.Readahead)
	}
}

func TestReaderCacheDisabled(t *testing.T) {
	d := newDeployment(t, 512)
	d.CacheBytes = -1 // no cache; readahead implicitly off too
	fs := mount(t, d, "cli")
	data := writeBlocks(t, fs, "/ra/nocache", 512, 4)

	if fs.BlobClient().PageCache() != nil {
		t.Fatal("cache present despite CacheBytes < 0")
	}
	f, err := fs.Open(ctx, "/ra/nocache")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("uncached read failed: %v", err)
	}
	if snap := fs.BlobClient().ReadStats().Snapshot(); snap.Readahead != 0 {
		t.Errorf("readahead = %d with the cache disabled", snap.Readahead)
	}
}

func TestReadersShareMountCache(t *testing.T) {
	d := newDeployment(t, 512)
	fs := mount(t, d, "cli")
	const blocks = 6
	data := writeBlocks(t, fs, "/ra/shared", 512, blocks)

	// First reader warms the mount's cache.
	f1, err := fs.Open(ctx, "/ra/shared")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := io.ReadAll(f1); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("first read failed: %v", err)
	}
	f1.Close()
	warm := fs.BlobClient().ReadStats().Snapshot()
	if warm.ProviderFetches != blocks {
		t.Fatalf("cold scan fetched %d pages, want %d", warm.ProviderFetches, blocks)
	}

	// A second reader of the same mount must be served from the cache.
	f2, err := fs.Open(ctx, "/ra/shared")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if got, err := io.ReadAll(f2); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("second read failed: %v", err)
	}
	after := fs.BlobClient().ReadStats().Snapshot()
	if d := after.ProviderFetches - warm.ProviderFetches; d != 0 {
		t.Errorf("second reader issued %d provider RPCs, want 0 (shared cache)", d)
	}
}

func TestReaderCloseStopsReads(t *testing.T) {
	d := newDeployment(t, 512)
	fs := mount(t, d, "cli")
	writeBlocks(t, fs, "/ra/close", 512, 4)

	f, err := fs.Open(ctx, "/ra/close")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(buf); err == nil {
		t.Error("Read succeeded on a closed reader")
	}
	if _, err := f.ReadAt(buf, 0); err == nil {
		t.Error("ReadAt succeeded on a closed reader")
	}
	if err := f.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

// TestReaderCloseCancelsOutstandingReadahead opens a reader over a
// file far longer than the readahead window, touches the first block,
// and closes immediately: Close must return promptly (cancelling
// in-flight prefetches) rather than waiting for the whole window to
// transfer.
func TestReaderCloseCancelsOutstandingReadahead(t *testing.T) {
	d := newDeployment(t, 512)
	d.ReadDepth = 8
	fs := mount(t, d, "cli")
	writeBlocks(t, fs, "/ra/cancel", 512, 32)

	f, err := fs.Open(ctx, "/ra/cancel")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on outstanding readahead")
	}
}

func TestReadAtThroughCachePatterns(t *testing.T) {
	// The Map/Reduce record readers issue sequential sub-block ReadAt
	// calls; every block must be fetched exactly once.
	d := newDeployment(t, 1024)
	fs := mount(t, d, "cli")
	const blocks = 4
	data := writeBlocks(t, fs, "/ra/records", 1024, blocks)

	f, err := fs.Open(ctx, "/ra/records")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	step := 100
	out := make([]byte, 0, len(data))
	buf := make([]byte, step)
	for off := 0; off < len(data); off += step {
		n, err := f.ReadAt(buf, int64(off))
		if err != nil && err != io.EOF {
			t.Fatal(err)
		}
		out = append(out, buf[:n]...)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("stitched ReadAt stream mismatched")
	}
	snap := fs.BlobClient().ReadStats().Snapshot()
	if snap.Misses != blocks {
		t.Errorf("misses = %d, want %d (each block fetched once)", snap.Misses, blocks)
	}
}

// TestReaderRefreshSeesGrowth re-checks the Refresh contract under the
// cache-backed reader: a reader following an appender must see the new
// bytes after Refresh, and previously-read blocks stay valid.
func TestReaderRefreshSeesGrowth(t *testing.T) {
	d := newDeployment(t, 256)
	fs := mount(t, d, "cli")
	first := []byte(strings.Repeat("a", 300))
	if err := dfs.WriteFile(ctx, fs, "/ra/grow", first); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(ctx, "/ra/grow")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got, first) {
		t.Fatalf("initial read failed: %v", err)
	}

	w, err := fs.Append(ctx, "/ra/grow")
	if err != nil {
		t.Fatal(err)
	}
	second := []byte(strings.Repeat("b", 300))
	if _, err := w.Write(second); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	size, err := f.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if size != 600 {
		t.Fatalf("size after refresh = %d, want 600", size)
	}
	tail := make([]byte, 300)
	if _, err := f.ReadAt(tail, 300); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, second) {
		t.Error("refreshed reader missed appended bytes")
	}
}
