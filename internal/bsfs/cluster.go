package bsfs

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/gc"
	"blobseer/internal/metrics"
	"blobseer/internal/monitor"
	"blobseer/internal/transport"
)

// Deployment bundles a BlobSeer cluster with a BSFS namespace manager
// and the garbage collector: a complete BSFS installation.
type Deployment struct {
	Blob *blob.Cluster
	NS   *NamespaceManager

	// GC is the deployment's garbage collector. It is always created —
	// file deletion kicks it so "rm" actually frees provider storage —
	// and runs kick-driven until SetGCInterval arms periodic passes
	// (which retention policies need to make progress without deletes).
	GC *gc.Collector

	// Monitor is the deployment's cluster monitor: every provider, VM
	// shard, the namespace manager, and each Mount register stats
	// sources on it, and its heat sketches watch the page access paths.
	// Like GC it is collect-on-demand until SetMonitorInterval arms the
	// periodic collector.
	Monitor *monitor.Monitor

	// WriteDepth is the writer pipeline depth handed to mounts (how
	// many blocks one writer keeps in flight); 0 means
	// DefaultWriteDepth, 1 reverts to the synchronous writer.
	WriteDepth int

	// ReadDepth is the reader readahead depth handed to mounts (how
	// many blocks stay in flight ahead of a sequential reader); 0
	// means DefaultReadDepth, negative disables readahead.
	ReadDepth int

	// CacheBytes budgets each mount's shared page cache; 0 means
	// cache.DefaultBudget, negative disables caching.
	CacheBytes int64

	// PinTTL is the reader pin lease handed to mounts; 0 means
	// DefaultPinTTL, negative disables reader pins.
	PinTTL time.Duration

	nsClient  *blob.Client // owned by the namespace manager
	gcClient  *blob.Client // owned by the collector wiring
	blockSize uint64
}

// Deploy starts a namespace manager on host "bsfs-ns-host" attached to
// an existing BlobSeer cluster, plus a garbage collector co-located
// with the version manager. blockSize is the page size of newly
// created files.
func Deploy(c *blob.Cluster, blockSize uint64) (*Deployment, error) {
	nsClient := c.Client("bsfs-ns-host")
	// The namespace manager shares the cluster's durability mode: with a
	// journal directory it survives restarts alongside the version-
	// manager shards.
	nsJournal := ""
	if c.Cfg.JournalDir != "" {
		nsJournal = filepath.Join(c.Cfg.JournalDir, "namespace.log")
	}
	ns, err := NewDurableNamespaceManager(c.Net, transport.MakeAddr("bsfs-ns-host", SvcNamespace), nsClient, nsJournal)
	if err != nil {
		nsClient.Close()
		return nil, err
	}
	// The collector gets its own client (cache purges must not race a
	// real mount's reads) and a kick from every lifecycle RPC on every
	// shard, so deletions reclaim promptly even with no periodic
	// interval armed; the cluster re-wires the kick when a shard
	// restarts after failover.
	gcClient := c.Client("vmanager-host")
	collector := gc.New(gcClient, gc.Options{})
	c.SetReclaimNotify(collector.Kick)

	// Cluster monitor: heat hooks go in AFTER the internal ns/gc clients
	// were created, so their metadata traffic never pollutes the
	// read-heat sketch — only real mounts (created later) feed it.
	mon := monitor.New(monitor.Config{NICBandwidth: c.Cfg.NICBandwidth})
	c.SetHeat(mon.ReadHeat().TouchPage, mon.WriteHeat().TouchPage)
	metrics.Default.AttachHeat("read", mon.ReadHeat())
	metrics.Default.AttachHeat("write", mon.WriteHeat())
	for _, p := range c.Providers {
		p := p
		mon.Register(monitor.KindProvider, p.Addr().Host(), func() monitor.Sample {
			return p.MonitorSample()
		})
	}
	for i := range c.VMAddrs() {
		i := i
		mon.Register(monitor.KindVMShard, fmt.Sprintf("shard-%d", i), func() monitor.Sample {
			// ShardVM, not VMs[i]: failover swaps the slot concurrently.
			vm := c.ShardVM(i)
			if vm == nil {
				return nil
			}
			return vm.MonitorSample()
		})
	}
	mon.Register(monitor.KindNamespace, "namespace", func() monitor.Sample {
		return ns.MonitorSample()
	})

	return &Deployment{
		Blob:      c,
		NS:        ns,
		GC:        collector,
		Monitor:   mon,
		nsClient:  nsClient,
		gcClient:  gcClient,
		blockSize: blockSize,
	}, nil
}

// SetGCInterval arms the collector's periodic reclaim passes (0 keeps
// it kick-driven only).
func (d *Deployment) SetGCInterval(interval time.Duration) {
	d.GC.SetInterval(interval)
}

// SetMonitorInterval arms the cluster monitor's periodic collection
// (0 keeps it collect-on-demand only).
func (d *Deployment) SetMonitorInterval(interval time.Duration) {
	d.Monitor.SetInterval(interval)
}

// healthPingTimeout bounds each VM-shard health ping; the router's
// failover retry would otherwise mask a dead shard for the caller's
// whole deadline.
const healthPingTimeout = 2 * time.Second

// Health checks every component and reports per-component verdicts:
// the namespace journal is open, every VM shard answers a cheap stats
// ping through the router, and (when armed) the monitor's collector has
// run within two intervals. The /healthz endpoint serves this with a
// 503 on degradation.
func (d *Deployment) Health(ctx context.Context) monitor.HealthReport {
	rep := monitor.HealthReport{Healthy: true, CheckedAt: time.Now()}

	if d.NS.JournalOpen() {
		rep.Add("namespace", true, "")
	} else {
		rep.Add("namespace", false, "journal closed")
	}

	router := d.nsClient.VMRouter()
	for i, addr := range d.Blob.VMAddrs() {
		name := fmt.Sprintf("vmshard-%d", i)
		cctx, cancel := context.WithTimeout(ctx, healthPingTimeout)
		var resp blob.VMStatsResp
		err := router.CallAddr(cctx, addr, blob.VMStats, nil, &resp)
		cancel()
		if err != nil {
			rep.Add(name, false, fmt.Sprintf("ping: %v", err))
		} else {
			rep.Add(name, true, "")
		}
	}

	if iv, armed := d.Monitor.Armed(); armed {
		if d.Monitor.Fresh(2 * iv) {
			rep.Add("monitor", true, "")
		} else {
			rep.Add("monitor", false, fmt.Sprintf("collector stale (no pass within %v)", 2*iv))
		}
	} else {
		rep.Add("monitor", true, "collector unarmed (collect-on-demand)")
	}
	return rep
}

// Mount returns a BSFS client mount running on host. The mount feeds
// the monitor's read-heat sketch and reports as a client stats source
// until it closes.
func (d *Deployment) Mount(host string) *FS {
	fs := New(Config{
		Net:             d.Blob.Net,
		Host:            host,
		Namespace:       d.NS.Addr(),
		VersionManager:  d.Blob.VM.Addr(),
		VersionManagers: d.Blob.VMAddrs(),
		ProviderManager: d.Blob.PM.Addr(),
		Metadata:        d.Blob.MetaAddrs(),
		BlockSize:       d.blockSize,
		WriteDepth:      d.WriteDepth,
		ReadDepth:       d.ReadDepth,
		CacheBytes:      d.CacheBytes,
		PinTTL:          d.PinTTL,
		MetaReplicas:    d.Blob.Cfg.MetaReplicas,
		PageReplicas:    d.Blob.Cfg.PageReplicas,
		ReadHeat:        d.Monitor.ReadHeat().TouchPage,
	})
	bc := fs.BlobClient()
	src := d.Monitor.Register(monitor.KindClient, host, func() monitor.Sample {
		rs := bc.ReadStats().Snapshot()
		s := monitor.Sample{
			"cache_hits_total":        float64(rs.Hits),
			"cache_misses_total":      float64(rs.Misses),
			"provider_fetches_total":  float64(rs.ProviderFetches),
			"provider_failures_total": float64(rs.ProviderFailures),
			"inflight_writes":         float64(bc.InFlight()),
		}
		if pc := bc.PageCache(); pc != nil {
			s["cache_bytes"] = float64(pc.Bytes())
		}
		return s
	})
	fs.onClose = src.Unregister
	return fs
}

// Close stops the namespace manager and the collector (the BlobSeer
// cluster is owned by the caller).
func (d *Deployment) Close() error {
	d.Blob.SetReclaimNotify(nil)
	d.Monitor.Close()
	d.GC.Close()
	err := d.NS.Close()
	d.nsClient.Close()
	d.gcClient.Close()
	return err
}
