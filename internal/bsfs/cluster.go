package bsfs

import (
	"blobseer/internal/blob"
	"blobseer/internal/transport"
)

// Deployment bundles a BlobSeer cluster with a BSFS namespace manager:
// a complete BSFS installation.
type Deployment struct {
	Blob *blob.Cluster
	NS   *NamespaceManager

	// WriteDepth is the writer pipeline depth handed to mounts (how
	// many blocks one writer keeps in flight); 0 means
	// DefaultWriteDepth, 1 reverts to the synchronous writer.
	WriteDepth int

	// ReadDepth is the reader readahead depth handed to mounts (how
	// many blocks stay in flight ahead of a sequential reader); 0
	// means DefaultReadDepth, negative disables readahead.
	ReadDepth int

	// CacheBytes budgets each mount's shared page cache; 0 means
	// cache.DefaultBudget, negative disables caching.
	CacheBytes int64

	nsClient  *blob.Client // owned by the namespace manager
	blockSize uint64
}

// Deploy starts a namespace manager on host "bsfs-ns-host" attached to
// an existing BlobSeer cluster. blockSize is the page size of newly
// created files.
func Deploy(c *blob.Cluster, blockSize uint64) (*Deployment, error) {
	nsClient := c.Client("bsfs-ns-host")
	ns, err := NewNamespaceManager(c.Net, transport.MakeAddr("bsfs-ns-host", SvcNamespace), nsClient)
	if err != nil {
		nsClient.Close()
		return nil, err
	}
	return &Deployment{Blob: c, NS: ns, nsClient: nsClient, blockSize: blockSize}, nil
}

// Mount returns a BSFS client mount running on host.
func (d *Deployment) Mount(host string) *FS {
	return New(Config{
		Net:             d.Blob.Net,
		Host:            host,
		Namespace:       d.NS.Addr(),
		VersionManager:  d.Blob.VM.Addr(),
		ProviderManager: d.Blob.PM.Addr(),
		Metadata:        d.Blob.MetaAddrs(),
		BlockSize:       d.blockSize,
		WriteDepth:      d.WriteDepth,
		ReadDepth:       d.ReadDepth,
		CacheBytes:      d.CacheBytes,
		MetaReplicas:    d.Blob.Cfg.MetaReplicas,
		PageReplicas:    d.Blob.Cfg.PageReplicas,
	})
}

// Close stops the namespace manager (the BlobSeer cluster is owned by
// the caller).
func (d *Deployment) Close() error {
	err := d.NS.Close()
	d.nsClient.Close()
	return err
}
