package bsfs

import (
	"path/filepath"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/gc"
	"blobseer/internal/transport"
)

// Deployment bundles a BlobSeer cluster with a BSFS namespace manager
// and the garbage collector: a complete BSFS installation.
type Deployment struct {
	Blob *blob.Cluster
	NS   *NamespaceManager

	// GC is the deployment's garbage collector. It is always created —
	// file deletion kicks it so "rm" actually frees provider storage —
	// and runs kick-driven until SetGCInterval arms periodic passes
	// (which retention policies need to make progress without deletes).
	GC *gc.Collector

	// WriteDepth is the writer pipeline depth handed to mounts (how
	// many blocks one writer keeps in flight); 0 means
	// DefaultWriteDepth, 1 reverts to the synchronous writer.
	WriteDepth int

	// ReadDepth is the reader readahead depth handed to mounts (how
	// many blocks stay in flight ahead of a sequential reader); 0
	// means DefaultReadDepth, negative disables readahead.
	ReadDepth int

	// CacheBytes budgets each mount's shared page cache; 0 means
	// cache.DefaultBudget, negative disables caching.
	CacheBytes int64

	// PinTTL is the reader pin lease handed to mounts; 0 means
	// DefaultPinTTL, negative disables reader pins.
	PinTTL time.Duration

	nsClient  *blob.Client // owned by the namespace manager
	gcClient  *blob.Client // owned by the collector wiring
	blockSize uint64
}

// Deploy starts a namespace manager on host "bsfs-ns-host" attached to
// an existing BlobSeer cluster, plus a garbage collector co-located
// with the version manager. blockSize is the page size of newly
// created files.
func Deploy(c *blob.Cluster, blockSize uint64) (*Deployment, error) {
	nsClient := c.Client("bsfs-ns-host")
	// The namespace manager shares the cluster's durability mode: with a
	// journal directory it survives restarts alongside the version-
	// manager shards.
	nsJournal := ""
	if c.Cfg.JournalDir != "" {
		nsJournal = filepath.Join(c.Cfg.JournalDir, "namespace.log")
	}
	ns, err := NewDurableNamespaceManager(c.Net, transport.MakeAddr("bsfs-ns-host", SvcNamespace), nsClient, nsJournal)
	if err != nil {
		nsClient.Close()
		return nil, err
	}
	// The collector gets its own client (cache purges must not race a
	// real mount's reads) and a kick from every lifecycle RPC on every
	// shard, so deletions reclaim promptly even with no periodic
	// interval armed; the cluster re-wires the kick when a shard
	// restarts after failover.
	gcClient := c.Client("vmanager-host")
	collector := gc.New(gcClient, gc.Options{})
	c.SetReclaimNotify(collector.Kick)
	return &Deployment{
		Blob:      c,
		NS:        ns,
		GC:        collector,
		nsClient:  nsClient,
		gcClient:  gcClient,
		blockSize: blockSize,
	}, nil
}

// SetGCInterval arms the collector's periodic reclaim passes (0 keeps
// it kick-driven only).
func (d *Deployment) SetGCInterval(interval time.Duration) {
	d.GC.SetInterval(interval)
}

// Mount returns a BSFS client mount running on host.
func (d *Deployment) Mount(host string) *FS {
	return New(Config{
		Net:             d.Blob.Net,
		Host:            host,
		Namespace:       d.NS.Addr(),
		VersionManager:  d.Blob.VM.Addr(),
		VersionManagers: d.Blob.VMAddrs(),
		ProviderManager: d.Blob.PM.Addr(),
		Metadata:        d.Blob.MetaAddrs(),
		BlockSize:       d.blockSize,
		WriteDepth:      d.WriteDepth,
		ReadDepth:       d.ReadDepth,
		CacheBytes:      d.CacheBytes,
		PinTTL:          d.PinTTL,
		MetaReplicas:    d.Blob.Cfg.MetaReplicas,
		PageReplicas:    d.Blob.Cfg.PageReplicas,
	})
}

// Close stops the namespace manager and the collector (the BlobSeer
// cluster is owned by the caller).
func (d *Deployment) Close() error {
	d.Blob.SetReclaimNotify(nil)
	d.GC.Close()
	err := d.NS.Close()
	d.nsClient.Close()
	d.gcClient.Close()
	return err
}
