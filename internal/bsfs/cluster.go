package bsfs

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/flight"
	"blobseer/internal/gc"
	"blobseer/internal/metrics"
	"blobseer/internal/monitor"
	"blobseer/internal/obs"
	"blobseer/internal/transport"
)

// Deployment bundles a BlobSeer cluster with a BSFS namespace manager
// and the garbage collector: a complete BSFS installation.
type Deployment struct {
	Blob *blob.Cluster
	NS   *NamespaceManager

	// GC is the deployment's garbage collector. It is always created —
	// file deletion kicks it so "rm" actually frees provider storage —
	// and runs kick-driven until SetGCInterval arms periodic passes
	// (which retention policies need to make progress without deletes).
	GC *gc.Collector

	// Monitor is the deployment's cluster monitor: every provider, VM
	// shard, the namespace manager, and each Mount register stats
	// sources on it, and its heat sketches watch the page access paths.
	// Like GC it is collect-on-demand until SetMonitorInterval arms the
	// periodic collector.
	Monitor *monitor.Monitor

	// WriteDepth is the writer pipeline depth handed to mounts (how
	// many blocks one writer keeps in flight); 0 means
	// DefaultWriteDepth, 1 reverts to the synchronous writer.
	WriteDepth int

	// ReadDepth is the reader readahead depth handed to mounts (how
	// many blocks stay in flight ahead of a sequential reader); 0
	// means DefaultReadDepth, negative disables readahead.
	ReadDepth int

	// CacheBytes budgets each mount's shared page cache; 0 means
	// cache.DefaultBudget, negative disables caching.
	CacheBytes int64

	// PinTTL is the reader pin lease handed to mounts; 0 means
	// DefaultPinTTL, negative disables reader pins.
	PinTTL time.Duration

	// HealthPingTimeout bounds each VM-shard health ping; 0 means
	// DefaultHealthPingTimeout. The router's failover retry would
	// otherwise mask a dead shard for the caller's whole deadline.
	HealthPingTimeout time.Duration

	// Flight is the deployment's flight recorder, nil until
	// EnableFlight wires one. Watchdog is the SLO rule engine armed
	// alongside it.
	Flight   *flight.Recorder
	Watchdog *flight.Watchdog
	sampler  *flight.Sampler

	nsClient  *blob.Client // owned by the namespace manager
	gcClient  *blob.Client // owned by the collector wiring
	blockSize uint64
}

// Deploy starts a namespace manager on host "bsfs-ns-host" attached to
// an existing BlobSeer cluster, plus a garbage collector co-located
// with the version manager. blockSize is the page size of newly
// created files.
func Deploy(c *blob.Cluster, blockSize uint64) (*Deployment, error) {
	nsClient := c.Client("bsfs-ns-host")
	// The namespace manager shares the cluster's durability mode: with a
	// journal directory it survives restarts alongside the version-
	// manager shards.
	nsJournal := ""
	if c.Cfg.JournalDir != "" {
		nsJournal = filepath.Join(c.Cfg.JournalDir, "namespace.log")
	}
	ns, err := NewDurableNamespaceManager(c.Net, transport.MakeAddr("bsfs-ns-host", SvcNamespace), nsClient, nsJournal)
	if err != nil {
		nsClient.Close()
		return nil, err
	}
	// The collector gets its own client (cache purges must not race a
	// real mount's reads) and a kick from every lifecycle RPC on every
	// shard, so deletions reclaim promptly even with no periodic
	// interval armed; the cluster re-wires the kick when a shard
	// restarts after failover.
	gcClient := c.Client("vmanager-host")
	collector := gc.New(gcClient, gc.Options{})
	c.SetReclaimNotify(collector.Kick)

	// Cluster monitor: heat hooks go in AFTER the internal ns/gc clients
	// were created, so their metadata traffic never pollutes the
	// read-heat sketch — only real mounts (created later) feed it.
	mon := monitor.New(monitor.Config{NICBandwidth: c.Cfg.NICBandwidth})
	c.SetHeat(mon.ReadHeat().TouchPage, mon.WriteHeat().TouchPage)
	metrics.Default.AttachHeat("read", mon.ReadHeat())
	metrics.Default.AttachHeat("write", mon.WriteHeat())
	for _, p := range c.Providers {
		p := p
		mon.Register(monitor.KindProvider, p.Addr().Host(), func() monitor.Sample {
			return p.MonitorSample()
		})
	}
	for i := range c.VMAddrs() {
		i := i
		mon.Register(monitor.KindVMShard, fmt.Sprintf("shard-%d", i), func() monitor.Sample {
			// ShardVM, not VMs[i]: failover swaps the slot concurrently.
			vm := c.ShardVM(i)
			if vm == nil {
				return nil
			}
			return vm.MonitorSample()
		})
	}
	mon.Register(monitor.KindNamespace, "namespace", func() monitor.Sample {
		return ns.MonitorSample()
	})

	return &Deployment{
		Blob:      c,
		NS:        ns,
		GC:        collector,
		Monitor:   mon,
		nsClient:  nsClient,
		gcClient:  gcClient,
		blockSize: blockSize,
	}, nil
}

// SetGCInterval arms the collector's periodic reclaim passes (0 keeps
// it kick-driven only).
func (d *Deployment) SetGCInterval(interval time.Duration) {
	d.GC.SetInterval(interval)
}

// SetMonitorInterval arms the cluster monitor's periodic collection
// (0 keeps it collect-on-demand only).
func (d *Deployment) SetMonitorInterval(interval time.Duration) {
	d.Monitor.SetInterval(interval)
}

// DefaultHealthPingTimeout bounds each VM-shard health ping when the
// deployment doesn't set its own; the router's failover retry would
// otherwise mask a dead shard for the caller's whole deadline.
const DefaultHealthPingTimeout = 2 * time.Second

func (d *Deployment) healthPingTimeout() time.Duration {
	if d.HealthPingTimeout > 0 {
		return d.HealthPingTimeout
	}
	return DefaultHealthPingTimeout
}

// Health checks every component and reports per-component verdicts
// with per-check latency: the namespace journal is open, every VM
// shard answers a cheap stats ping through the router (bounded by
// HealthPingTimeout), and (when armed) the monitor's collector has run
// within two intervals. The /healthz endpoint serves this with a 503
// on degradation.
func (d *Deployment) Health(ctx context.Context) monitor.HealthReport {
	rep := monitor.HealthReport{Healthy: true, CheckedAt: time.Now()}

	start := time.Now()
	if d.NS.JournalOpen() {
		rep.AddTimed("namespace", true, "", time.Since(start))
	} else {
		rep.AddTimed("namespace", false, "journal closed", time.Since(start))
	}

	router := d.nsClient.VMRouter()
	pingTimeout := d.healthPingTimeout()
	for i, addr := range d.Blob.VMAddrs() {
		name := fmt.Sprintf("vmshard-%d", i)
		cctx, cancel := context.WithTimeout(ctx, pingTimeout)
		var resp blob.VMStatsResp
		start := time.Now()
		err := router.CallAddr(cctx, addr, blob.VMStats, nil, &resp)
		took := time.Since(start)
		cancel()
		if err != nil {
			rep.AddTimed(name, false, fmt.Sprintf("ping: %v", err), took)
		} else {
			rep.AddTimed(name, true, "", took)
		}
	}

	start = time.Now()
	if iv, armed := d.Monitor.Armed(); armed {
		if d.Monitor.Fresh(2 * iv) {
			rep.AddTimed("monitor", true, "", time.Since(start))
		} else {
			rep.AddTimed("monitor", false, fmt.Sprintf("collector stale (no pass within %v)", 2*iv), time.Since(start))
		}
	} else {
		rep.AddTimed("monitor", true, "collector unarmed (collect-on-demand)", time.Since(start))
	}
	return rep
}

// FlightConfig wires a flight recorder + SLO watchdog onto a
// deployment. Zero values take the flight package defaults.
type FlightConfig struct {
	Recorder flight.RecorderOptions
	Sampler  flight.SamplerOptions
	Watchdog flight.WatchdogOptions
	Rules    flight.StandardRulesOptions
	// ExtraRules are appended after the standard set.
	ExtraRules []flight.Rule
}

// EnableFlight opens a flight recorder at path, attaches the tail
// sampler to the process-wide span collector, and arms an SLO watchdog
// (standard rules + cfg.ExtraRules, health check wired to
// Deployment.Health) on the cluster monitor: every collection pass
// evaluates the rules, and snapshots/health transitions/alerts land in
// the flight log. Close tears it all down; a kill doesn't, which is
// the point — the log replays.
func (d *Deployment) EnableFlight(path string, cfg FlightConfig) error {
	if d.Flight != nil {
		return fmt.Errorf("bsfs: flight recorder already enabled")
	}
	rec, err := flight.Open(path, cfg.Recorder)
	if err != nil {
		return err
	}
	rules, err := flight.StandardRules(cfg.Rules)
	if err != nil {
		rec.Close()
		return err
	}
	rules = append(rules, cfg.ExtraRules...)
	wopts := cfg.Watchdog
	if wopts.HealthCheck == nil && cfg.Rules.Health {
		wopts.HealthCheck = d.Health
	}
	d.Flight = rec
	d.sampler = flight.AttachSampler(obs.Spans, rec, cfg.Sampler)
	d.Watchdog = flight.NewWatchdog(d.Monitor, rec, rules, wopts)
	d.Watchdog.Arm()
	return nil
}

// Mount returns a BSFS client mount running on host. The mount feeds
// the monitor's read-heat sketch and reports as a client stats source
// until it closes.
func (d *Deployment) Mount(host string) *FS {
	fs := New(Config{
		Net:             d.Blob.Net,
		Host:            host,
		Namespace:       d.NS.Addr(),
		VersionManager:  d.Blob.VM.Addr(),
		VersionManagers: d.Blob.VMAddrs(),
		ProviderManager: d.Blob.PM.Addr(),
		Metadata:        d.Blob.MetaAddrs(),
		BlockSize:       d.blockSize,
		WriteDepth:      d.WriteDepth,
		ReadDepth:       d.ReadDepth,
		CacheBytes:      d.CacheBytes,
		PinTTL:          d.PinTTL,
		MetaReplicas:    d.Blob.Cfg.MetaReplicas,
		PageReplicas:    d.Blob.Cfg.PageReplicas,
		ReadHeat:        d.Monitor.ReadHeat().TouchPage,
	})
	bc := fs.BlobClient()
	src := d.Monitor.Register(monitor.KindClient, host, func() monitor.Sample {
		rs := bc.ReadStats().Snapshot()
		s := monitor.Sample{
			"cache_hits_total":        float64(rs.Hits),
			"cache_misses_total":      float64(rs.Misses),
			"provider_fetches_total":  float64(rs.ProviderFetches),
			"provider_failures_total": float64(rs.ProviderFailures),
			"inflight_writes":         float64(bc.InFlight()),
		}
		if pc := bc.PageCache(); pc != nil {
			s["cache_bytes"] = float64(pc.Bytes())
		}
		return s
	})
	fs.onClose = src.Unregister
	return fs
}

// Close stops the namespace manager and the collector (the BlobSeer
// cluster is owned by the caller).
func (d *Deployment) Close() error {
	d.Blob.SetReclaimNotify(nil)
	if d.Watchdog != nil {
		d.Watchdog.Close()
		d.Watchdog = nil
	}
	if d.sampler != nil {
		d.sampler.Close()
		d.sampler = nil
	}
	d.Monitor.Close()
	d.GC.Close()
	err := d.NS.Close()
	d.nsClient.Close()
	d.gcClient.Close()
	if d.Flight != nil {
		d.Flight.Close()
		d.Flight = nil
	}
	return err
}
