package bsfs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/cache"
	"blobseer/internal/dfs"
	"blobseer/internal/obs"
	"blobseer/internal/rpc"
	"blobseer/internal/transport"
)

// Config configures a BSFS client mount.
type Config struct {
	Net  transport.Network
	Host string

	Namespace       transport.Addr
	VersionManager  transport.Addr
	ProviderManager transport.Addr
	Metadata        []transport.Addr

	// VersionManagers lists every version-manager shard of a partitioned
	// metadata plane, in ring-slot order. Empty means the single manager
	// at VersionManager.
	VersionManagers []transport.Addr

	// BlockSize is the page size of newly created files and the unit
	// of client-side buffering/prefetching (the paper uses 64 MB to
	// match HDFS chunks; tests and experiments scale it down).
	BlockSize uint64

	// WriteDepth is how many blocks one writer keeps in flight: each
	// full block starts its append without waiting for the previous
	// one's data path, so only BlobSeer's serialized version
	// assignment is ordered. 1 reverts to the fully synchronous
	// writer; 0 means DefaultWriteDepth.
	WriteDepth int

	// ReadDepth is the read-side twin of WriteDepth: how many blocks
	// the readahead engine keeps in flight ahead of each sequential
	// reader. 0 means DefaultReadDepth; negative disables readahead
	// (the fully synchronous reader).
	ReadDepth int

	// CacheBytes budgets the mount's shared page cache — every reader
	// of this mount (all map tasks on a tracker) shares one cache, and
	// BlobSeer's versioned pages are immutable, so cached pages never
	// go stale. 0 means cache.DefaultBudget; negative disables caching
	// (and with it readahead, which stages pages through the cache).
	CacheBytes int64

	// PinTTL is the lease length of the version pin every reader takes
	// on its snapshot at Open: while the pin is live the garbage
	// collector cannot reclaim the pinned version, so a slow reader
	// never has pages deleted out from under it, and a crashed reader
	// delays collection by at most one TTL. 0 means DefaultPinTTL;
	// negative disables reader pins.
	PinTTL time.Duration

	MetaReplicas int
	PageReplicas int

	// ReadHeat, when set, observes every page access this mount makes
	// (the cluster monitor's read-heat sketch plugs in here).
	ReadHeat blob.PageTouch
}

// DefaultWriteDepth is the writer pipeline depth used when Config
// leaves WriteDepth unset.
const DefaultWriteDepth = 4

// DefaultReadDepth is the reader readahead depth used when Config
// leaves ReadDepth unset.
const DefaultReadDepth = 4

// DefaultPinTTL is the reader pin lease used when Config leaves PinTTL
// unset.
const DefaultPinTTL = 2 * time.Minute

// FS is a BSFS mount implementing dfs.FileSystem.
type FS struct {
	cfg  Config
	pool *rpc.Pool
	bc   *blob.Client

	// onClose, when set by the deployment, runs once on Close — it
	// unregisters the mount's monitor source.
	onClose func()
}

var (
	_ dfs.FileSystem          = (*FS)(nil)
	_ dfs.VersionedFileSystem = (*FS)(nil)
)

// mapVerErr translates the blob layer's internal version-lifecycle
// sentinels into the stable dfs error surface at the bsfs boundary, so
// framework and application code matches dfs.ErrVersionGone /
// dfs.ErrNotExist instead of internal error text that happens to
// survive RPC boundaries. Other errors pass through unchanged.
func mapVerErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, blob.ErrVersionCollected):
		return fmt.Errorf("%w (%v)", dfs.ErrVersionGone, err)
	case errors.Is(err, blob.ErrNoSuchVersion), errors.Is(err, blob.ErrNotPublished):
		return fmt.Errorf("%w (%v)", dfs.ErrNotExist, err)
	}
	return err
}

// New returns a BSFS mount for the given deployment.
func New(cfg Config) *FS {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 64 << 20
	}
	if cfg.WriteDepth <= 0 {
		cfg.WriteDepth = DefaultWriteDepth
	}
	switch {
	case cfg.ReadDepth == 0:
		cfg.ReadDepth = DefaultReadDepth
	case cfg.ReadDepth < 0:
		cfg.ReadDepth = 0 // normalized: 0 now means "readahead off"
	}
	if cfg.CacheBytes < 0 {
		cfg.ReadDepth = 0 // readahead stages pages through the cache
	}
	switch {
	case cfg.PinTTL == 0:
		cfg.PinTTL = DefaultPinTTL
	case cfg.PinTTL < 0:
		cfg.PinTTL = 0 // normalized: 0 now means "reader pins off"
	}
	return &FS{
		cfg:  cfg,
		pool: rpc.NewPool(cfg.Net, transport.MakeAddr(cfg.Host, "bsfs-client")),
		bc: blob.NewClient(blob.ClientConfig{
			Net:             cfg.Net,
			Host:            cfg.Host,
			VersionManager:  cfg.VersionManager,
			VersionManagers: cfg.VersionManagers,
			ProviderManager: cfg.ProviderManager,
			Metadata:        cfg.Metadata,
			MetaReplicas:    cfg.MetaReplicas,
			PageReplicas:    cfg.PageReplicas,
			CacheBytes:      cfg.CacheBytes,
			ReadHeat:        cfg.ReadHeat,
		}),
	}
}

// Close releases the mount's connections.
func (fs *FS) Close() error {
	if fs.onClose != nil {
		fs.onClose()
		fs.onClose = nil
	}
	fs.pool.Close()
	return fs.bc.Close()
}

// Name implements dfs.FileSystem.
func (fs *FS) Name() string { return "bsfs" }

// BlockSize implements dfs.FileSystem.
func (fs *FS) BlockSize() uint64 { return fs.cfg.BlockSize }

// BlobClient exposes the underlying BlobSeer client (tools, tests).
func (fs *FS) BlobClient() *blob.Client { return fs.bc }

// Create implements dfs.FileSystem.
func (fs *FS) Create(ctx context.Context, path string) (dfs.FileWriter, error) {
	return fs.openWriter(ctx, path, true)
}

// Append implements dfs.FileSystem. BSFS supports concurrent appends:
// each buffered block is appended atomically via BlobSeer.
func (fs *FS) Append(ctx context.Context, path string) (dfs.FileWriter, error) {
	return fs.openWriter(ctx, path, false)
}

func (fs *FS) openWriter(ctx context.Context, path string, exclusive bool) (dfs.FileWriter, error) {
	var ent EntryResp
	err := fs.pool.Call(ctx, fs.cfg.Namespace, NSCreate,
		&CreateReq{Path: path, PageSize: fs.cfg.BlockSize, Exclusive: exclusive}, &ent)
	if err != nil {
		return nil, err
	}
	return &fileWriter{
		ctx:  ctx,
		fs:   fs,
		path: path,
		b:    fs.bc.Handle(ent.Blob, ent.PageSize),
		buf:  make([]byte, 0, ent.PageSize),
		sem:  make(chan struct{}, fs.cfg.WriteDepth),
	}, nil
}

// Open implements dfs.FileSystem. The reader pins the latest published
// version at open time (a consistent snapshot); Refresh re-pins.
func (fs *FS) Open(ctx context.Context, path string) (dfs.FileReader, error) {
	return fs.OpenVersion(ctx, path, 0)
}

// OpenVersion implements dfs.VersionedFileSystem: it opens the file's
// published snapshot ver (0 = latest, identical to Open). A non-zero
// ver gives a fixed-version reader: the snapshot is pinned against
// garbage collection before its metadata is even read — there is no
// window where the collector can reclaim it between lookup and pin —
// and stays pinned until Close, so the reader never observes
// dfs.ErrVersionGone mid-stream. Opening a version already behind the
// retention window fails up front with dfs.ErrVersionGone.
func (fs *FS) OpenVersion(ctx context.Context, path string, ver uint64) (dfs.VersionedReader, error) {
	ent, err := fs.lookup(ctx, path)
	if err != nil {
		return nil, err
	}
	if ent.IsDir {
		return nil, dfs.ErrIsDir
	}
	b := fs.bc.Handle(ent.Blob, ent.PageSize)
	r := &fileReader{ctx: ctx, b: b, blockSize: ent.PageSize, pinTTL: fs.cfg.PinTTL, fixed: ver != 0}

	var info blob.VersionInfo
	if ver != 0 {
		// Fixed-version open: pin first, resolve after.
		if r.pinTTL > 0 {
			if err := b.Pin(ctx, ver, r.pinTTL); err != nil {
				return nil, mapVerErr(err)
			}
			r.pinned = ver
			r.pinnedAt = time.Now()
		}
		if info, err = b.GetVersion(ctx, ver); err == nil && !info.Published {
			err = blob.ErrNotPublished
		}
		if err != nil {
			r.unpin()
			return nil, mapVerErr(err)
		}
	} else {
		if info, err = b.Latest(ctx); err != nil {
			return nil, mapVerErr(err)
		}
		// Pin the snapshot so the garbage collector cannot reclaim it
		// while this reader streams it, however slowly.
		if r.pinTTL > 0 && info.Ver > 0 {
			if err := b.Pin(ctx, info.Ver, r.pinTTL); err != nil {
				return nil, mapVerErr(err)
			}
			r.pinned = info.Ver
			r.pinnedAt = time.Now()
		}
	}
	r.ver.Store(info.Ver)
	r.size.Store(info.Size)
	if fs.cfg.ReadDepth > 0 {
		// Each block is one BlobSeer page, fetched into the mount's
		// shared cache ahead of the reader. Prefetch clamps against the
		// version's own size, so a stale snapshot is harmless.
		r.ra = cache.NewReadahead(ctx, fs.cfg.ReadDepth, fs.bc.ReadStats(),
			func(fctx context.Context, page uint64) {
				//lint:droppederr readahead is advisory; a miss costs one demand fetch and the read path reports real failures
				_ = b.Prefetch(fctx, r.ver.Load(), page*ent.PageSize, ent.PageSize)
			})
	}
	return r, nil
}

// SnapshotAt opens a pinned BLOB-level snapshot of the file at version
// ver (0 = latest published): lower-level than OpenVersion —
// byte-offset ReadAt, page views, page locations — with the same
// pin-for-lifetime guarantee. Close the snapshot to release its pin.
func (fs *FS) SnapshotAt(ctx context.Context, path string, ver uint64) (*blob.Snapshot, error) {
	ent, err := fs.lookup(ctx, path)
	if err != nil {
		return nil, err
	}
	if ent.IsDir {
		return nil, dfs.ErrIsDir
	}
	s, err := fs.bc.Handle(ent.Blob, ent.PageSize).At(ctx, ver, fs.cfg.PinTTL)
	if err != nil {
		return nil, mapVerErr(err)
	}
	return s, nil
}

// Versions implements dfs.VersionedFileSystem: the file's published
// snapshots still inside the retention window, oldest first.
func (fs *FS) Versions(ctx context.Context, path string) ([]dfs.VersionInfo, error) {
	ent, err := fs.lookup(ctx, path)
	if err != nil {
		return nil, err
	}
	if ent.IsDir {
		return nil, dfs.ErrIsDir
	}
	infos, err := fs.bc.Handle(ent.Blob, ent.PageSize).History(ctx, 0)
	if err != nil {
		return nil, mapVerErr(err)
	}
	out := make([]dfs.VersionInfo, 0, len(infos))
	for _, i := range infos {
		out = append(out, dfs.VersionInfo{Version: i.Ver, Size: i.Size, Blocks: i.Pages})
	}
	return out, nil
}

// WaitVersion implements dfs.VersionedFileSystem: it blocks until a
// snapshot newer than after publishes. Versions are assigned densely,
// so the next snapshot after `after` is exactly version after+1; the
// wait rides the version manager's publication waiters, costing no
// polling.
func (fs *FS) WaitVersion(ctx context.Context, path string, after uint64) (dfs.VersionInfo, error) {
	ent, err := fs.lookup(ctx, path)
	if err != nil {
		return dfs.VersionInfo{}, err
	}
	if ent.IsDir {
		return dfs.VersionInfo{}, dfs.ErrIsDir
	}
	info, err := fs.bc.Handle(ent.Blob, ent.PageSize).WaitPublished(ctx, after+1)
	if err != nil {
		return dfs.VersionInfo{}, mapVerErr(err)
	}
	return dfs.VersionInfo{Version: info.Ver, Size: info.Size, Blocks: info.Pages}, nil
}

func (fs *FS) lookup(ctx context.Context, path string) (EntryResp, error) {
	var ent EntryResp
	err := fs.pool.Call(ctx, fs.cfg.Namespace, NSLookup, &dfs.PathReq{Path: path}, &ent)
	return ent, err
}

// Stat implements dfs.FileSystem. File sizes come from the BLOB's
// latest published version (authoritative), not the namespace cache.
func (fs *FS) Stat(ctx context.Context, path string) (dfs.FileInfo, error) {
	ent, err := fs.lookup(ctx, path)
	if err != nil {
		return dfs.FileInfo{}, err
	}
	clean, err := dfs.CleanPath(path)
	if err != nil {
		return dfs.FileInfo{}, err
	}
	fi := dfs.FileInfo{Path: clean, IsDir: ent.IsDir}
	if !ent.IsDir {
		info, err := fs.bc.Handle(ent.Blob, ent.PageSize).Latest(ctx)
		if err != nil {
			return dfs.FileInfo{}, mapVerErr(err)
		}
		fi.Size = info.Size
		fi.Blocks = info.Pages
		// The version whose Size this is: "Stat then OpenVersion" pins
		// exactly the snapshot the caller just observed.
		fi.Version = info.Ver
	}
	return fi, nil
}

// List implements dfs.FileSystem. Sizes reflect the namespace's cached
// values, which appenders update after each block.
func (fs *FS) List(ctx context.Context, dir string) ([]dfs.FileInfo, error) {
	var resp dfs.ListResp
	if err := fs.pool.Call(ctx, fs.cfg.Namespace, NSList, &dfs.PathReq{Path: dir}, &resp); err != nil {
		return nil, err
	}
	return resp.Infos, nil
}

// Rename implements dfs.FileSystem.
func (fs *FS) Rename(ctx context.Context, src, dst string) error {
	return fs.pool.Call(ctx, fs.cfg.Namespace, NSRename, &dfs.PathPairReq{Src: src, Dst: dst}, nil)
}

// Delete implements dfs.FileSystem. Deleting a file schedules its
// backing BLOB for reclamation (the namespace manager retires it at the
// version manager; the garbage collector frees the pages), so this
// mount's cached pages, slots, and version infos for that BLOB are
// purged too — other mounts purge lazily when a read surfaces
// dfs.ErrVersionGone.
func (fs *FS) Delete(ctx context.Context, path string) error {
	ent, lerr := fs.lookup(ctx, path)
	if err := fs.pool.Call(ctx, fs.cfg.Namespace, NSDelete, &dfs.PathReq{Path: path}, nil); err != nil {
		return err
	}
	if lerr == nil && !ent.IsDir && ent.Blob != 0 {
		fs.bc.PurgeBlob(ent.Blob)
	}
	return nil
}

// Mkdir implements dfs.FileSystem.
func (fs *FS) Mkdir(ctx context.Context, path string) error {
	return fs.pool.Call(ctx, fs.cfg.Namespace, NSMkdir, &dfs.PathReq{Path: path}, nil)
}

// BlockLocations implements dfs.FileSystem via the primitive of §3.2
// that "exposes the pages distribution to providers" for the scheduler.
func (fs *FS) BlockLocations(ctx context.Context, path string, off, length uint64) ([]dfs.BlockLoc, error) {
	return fs.BlockLocationsAt(ctx, path, 0, off, length)
}

// BlockLocationsAt implements dfs.VersionedFileSystem: BlockLocations
// resolved at snapshot ver (0 = latest), so a scheduler that pinned a
// job's input version places tasks by the pinned snapshot's page
// distribution, not a concurrently growing latest.
func (fs *FS) BlockLocationsAt(ctx context.Context, path string, ver uint64, off, length uint64) ([]dfs.BlockLoc, error) {
	ent, err := fs.lookup(ctx, path)
	if err != nil {
		return nil, err
	}
	if ent.IsDir {
		return nil, dfs.ErrIsDir
	}
	b := fs.bc.Handle(ent.Blob, ent.PageSize)
	var info blob.VersionInfo
	if ver != 0 {
		if info, err = b.GetVersion(ctx, ver); err == nil && !info.Published {
			err = blob.ErrNotPublished
		}
	} else {
		info, err = b.Latest(ctx)
	}
	if err != nil {
		return nil, mapVerErr(err)
	}
	if off >= info.Size {
		return nil, nil
	}
	locs, err := b.PageLocations(ctx, info.Ver, off, length)
	if err != nil {
		return nil, mapVerErr(err)
	}
	out := make([]dfs.BlockLoc, 0, len(locs))
	for _, l := range locs {
		start := l.Index * ent.PageSize
		end := start + ent.PageSize
		if end > info.Size {
			end = info.Size
		}
		out = append(out, dfs.BlockLoc{Offset: start, Length: end - start, Hosts: l.Hosts})
	}
	return out, nil
}

// MetadataEntries implements dfs.FileSystem: the number of records the
// centralized namespace manager holds. Page locations live in the
// scalable metadata DHT, so they do not count against the centralized
// server — the heart of the paper's file-count argument.
func (fs *FS) MetadataEntries(ctx context.Context) (uint64, error) {
	var resp dfs.CountResp
	if err := fs.pool.Call(ctx, fs.cfg.Namespace, NSEntries, nil, &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

//
// Writer: client-side caching of §3.2 ("delays committing writes until
// a whole block has been filled in the cache"), pipelined so up to
// Config.WriteDepth blocks are in flight at once. Version assignment
// stays in the caller's goroutine, so one writer's blocks land in
// write order; everything after assignment overlaps across blocks.
//

type fileWriter struct {
	ctx  context.Context
	fs   *FS
	path string
	b    *blob.Blob

	buf    []byte
	closed bool

	sem chan struct{}  // one slot per in-flight block
	wg  sync.WaitGroup // watchers of in-flight blocks

	mu           sync.Mutex
	werr         error  // first error from any block's data path
	lastVer      uint64 // highest version this writer produced
	sizeSeen     uint64 // max SizeAfter among finished appends
	sizeSent     uint64 // last size pushed to the namespace
	sizeUpdating bool   // an NSUpdateSize coalescing loop is running
}

func (w *fileWriter) firstErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.werr
}

func (w *fileWriter) setErr(err error) {
	w.mu.Lock()
	if w.werr == nil {
		w.werr = err
	}
	w.mu.Unlock()
}

// Write implements io.Writer.
func (w *fileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("bsfs: write to closed file %s", w.path)
	}
	if err := w.firstErr(); err != nil {
		return 0, err
	}
	total := 0
	bs := int(w.b.PageSize())
	for len(p) > 0 {
		space := bs - len(w.buf)
		n := len(p)
		if n > space {
			n = space
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
		if len(w.buf) == bs {
			if err := w.launch(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// launch starts the buffered block's append and returns without
// waiting for its data path, blocking only when WriteDepth blocks are
// already in flight. The assignment happens here, in the caller's
// goroutine, which keeps this writer's blocks in write order.
func (w *fileWriter) launch() error {
	if len(w.buf) == 0 {
		return nil
	}
	if err := w.firstErr(); err != nil {
		return err
	}
	block := w.buf
	w.buf = make([]byte, 0, w.b.PageSize())
	w.sem <- struct{}{} // wait for a pipeline slot
	p, err := w.b.AppendAsync(w.ctx, block)
	if err != nil {
		<-w.sem
		w.setErr(err)
		return err
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		res, err := p.Wait(w.ctx)
		<-w.sem
		if err != nil {
			w.setErr(err)
			return
		}
		w.noteAppended(res)
	}()
	return nil
}

// noteAppended records one finished block and pushes the file size to
// the namespace — the second half of §3.2's two-step append
// translation, coalesced so concurrent completions fold into one
// in-flight NSUpdateSize carrying the maximum SizeAfter seen.
func (w *fileWriter) noteAppended(res blob.WriteResult) {
	w.mu.Lock()
	if res.Ver > w.lastVer {
		w.lastVer = res.Ver
	}
	if res.SizeAfter > w.sizeSeen {
		w.sizeSeen = res.SizeAfter
	}
	if w.sizeUpdating {
		w.mu.Unlock()
		return // the running updater picks up the new maximum
	}
	w.sizeUpdating = true
	w.mu.Unlock()

	for {
		w.mu.Lock()
		target := w.sizeSeen
		if target <= w.sizeSent {
			w.sizeUpdating = false
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()
		err := w.fs.pool.Call(w.ctx, w.fs.cfg.Namespace, NSUpdateSize,
			&UpdateSizeReq{Path: w.path, Size: target}, nil)
		w.mu.Lock()
		if err != nil {
			if w.werr == nil {
				w.werr = err
			}
			w.sizeUpdating = false
			w.mu.Unlock()
			return
		}
		w.sizeSent = target
		w.mu.Unlock()
	}
}

// drain waits for every in-flight block (and its namespace size
// update) and reports the first error the pipeline hit.
func (w *fileWriter) drain() error {
	w.wg.Wait()
	return w.firstErr()
}

// Flush appends the buffered bytes immediately (as one atomic BlobSeer
// append) instead of waiting for a full block, then drains the
// pipeline. Writers that need record atomicity across concurrent
// appenders — the reducers of a shared-append job — flush at record
// boundaries.
func (w *fileWriter) Flush() error {
	if w.closed {
		return fmt.Errorf("bsfs: flush of closed file %s", w.path)
	}
	if err := w.launch(); err != nil {
		return err
	}
	return w.drain()
}

// Close flushes the tail block, drains the pipeline, and waits until
// this writer's last version is published — versions publish in
// assignment order, so that covers every block — making data readable
// when Close returns.
func (w *fileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.launch(); err != nil {
		w.wg.Wait()
		return err
	}
	if err := w.drain(); err != nil {
		return err
	}
	if w.lastVer > 0 {
		if _, err := w.b.WaitPublished(w.ctx, w.lastVer); err != nil {
			return err
		}
	}
	return nil
}

//
// Reader: whole-block reads through the mount's shared page cache
// (§3.2: the client "prefetches a whole block when the requested data
// is not already cached"), with up to Config.ReadDepth blocks kept in
// flight ahead of a sequential stream by the readahead engine — the
// read-side twin of the writer's WriteDepth pipeline.
//

type fileReader struct {
	ctx       context.Context
	b         *blob.Blob
	blockSize uint64

	// fixed marks a fixed-version reader (OpenVersion with ver != 0):
	// it serves exactly one immutable snapshot, so Refresh never moves
	// it to a newer version.
	fixed bool

	// pinned is the version this reader holds a GC pin on (0 = none);
	// pinTTL is the lease length used when (re-)pinning, and pinnedAt
	// is when the lease was last extended — block reads renew it past
	// its half-life, so a reader slower than the TTL keeps protection.
	pinned   uint64
	pinTTL   time.Duration
	pinnedAt time.Time

	// ver/size are the pinned snapshot. They are atomics because the
	// readahead goroutines read ver concurrently with Refresh.
	ver  atomic.Uint64
	size atomic.Uint64

	pos    uint64
	bufOff uint64
	buf    []byte // read-only view of the current block (may alias the cache)

	ra     *cache.Readahead // nil when readahead is disabled
	closed bool
}

// fillBlock points r.buf at the whole block containing pos. Each BSFS
// block is one BlobSeer page, so a cache-resident block costs no copy
// at all — the view aliases the cached page — and consuming it nudges
// the readahead window forward.
func (r *fileReader) fillBlock(pos uint64) error {
	r.renewPin()
	size := r.size.Load()
	block := pos / r.blockSize
	view, err := r.b.PageView(r.ctx, r.ver.Load(), block)
	if err != nil {
		return mapVerErr(err)
	}
	r.bufOff, r.buf = block*r.blockSize, view
	r.ra.Observe(block, (size+r.blockSize-1)/r.blockSize)
	return nil
}

// cached reports whether pos is inside the current block view.
func (r *fileReader) cached(pos uint64) bool {
	return len(r.buf) > 0 && pos >= r.bufOff && pos < r.bufOff+uint64(len(r.buf))
}

// Read implements io.Reader with whole-block reads and readahead.
func (r *fileReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("bsfs: read from closed file")
	}
	if r.pos >= r.size.Load() {
		return 0, io.EOF
	}
	if !r.cached(r.pos) {
		if err := r.fillBlock(r.pos); err != nil {
			return 0, err
		}
	}
	n := copy(p, r.buf[r.pos-r.bufOff:])
	r.pos += uint64(n)
	return n, nil
}

// ReadAt implements io.ReaderAt through the same one-block view, so
// sequential sub-block ReadAt patterns (the Map/Reduce record readers)
// fetch every block exactly once instead of re-transferring the whole
// containing block per call.
func (r *fileReader) ReadAt(p []byte, off int64) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("bsfs: read from closed file")
	}
	if off < 0 {
		return 0, fmt.Errorf("bsfs: negative offset")
	}
	pos := uint64(off)
	size := r.size.Load()
	if pos >= size {
		return 0, io.EOF
	}
	want := uint64(len(p))
	var eof bool
	if pos+want > size {
		want = size - pos
		eof = true
	}
	var done uint64
	for done < want {
		if !r.cached(pos + done) {
			if err := r.fillBlock(pos + done); err != nil {
				return int(done), err
			}
		}
		done += uint64(copy(p[done:want], r.buf[pos+done-r.bufOff:]))
	}
	if eof {
		return int(done), io.EOF
	}
	return int(done), nil
}

// Close implements io.Closer: it cancels outstanding readahead,
// releases the snapshot's GC pin, and drops the block view so a closed
// reader pins neither cache budget, provider bandwidth, nor obsolete
// versions. Further reads fail.
func (r *fileReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.ra.Close()
	r.buf = nil
	r.unpin()
	return nil
}

// renewPin extends the snapshot pin's lease once it is past half its
// TTL, so a reader streaming slower than the TTL keeps GC protection.
// Renewal is a Pin/Unpin pair in that order: the extra reference
// carries the refreshed expiry while the count nets out, and the
// version is never left unreferenced in between. Renewal failure is
// ignored — the read itself surfaces ErrVersionCollected if the
// version really is gone.
func (r *fileReader) renewPin() {
	if r.pinned == 0 || time.Since(r.pinnedAt) < r.pinTTL/2 {
		return
	}
	if err := r.b.Pin(r.ctx, r.pinned, r.pinTTL); err == nil {
		if uerr := r.b.Unpin(r.ctx, r.pinned); uerr != nil {
			// The fresh pin still protects the version; the stray
			// count drains when its lease expires.
			obs.Log.Debugf("bsfs: unpin after lease refresh of version %d: %v", r.pinned, uerr)
		}
		r.pinnedAt = time.Now()
	}
}

// unpin releases the current pin (if any) on a detached context: the
// reader's own context may already be cancelled, but the lease must
// still reach the version manager or collection stalls for one TTL.
func (r *fileReader) unpin() {
	if r.pinned == 0 {
		return
	}
	ver := r.pinned
	r.pinned = 0
	//lint:detached the lease release must reach the version manager even after the reader's ctx died, or collection stalls a full TTL
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.b.Unpin(ctx, ver); err != nil {
		obs.Log.Debugf("bsfs: detached unpin of version %d: %v", ver, err)
	}
}

// Size implements dfs.FileReader.
func (r *fileReader) Size() uint64 { return r.size.Load() }

// Version implements dfs.VersionedReader: the published snapshot this
// reader currently serves.
func (r *fileReader) Version() uint64 { return r.ver.Load() }

// Refresh re-pins the latest published version so a reader can follow
// a file that concurrent appenders are growing (the pipeline scenario
// of §5). Cached pages of older versions stay valid — versions are
// immutable — so refreshing never invalidates the cache. A
// fixed-version reader (OpenVersion) serves one immutable snapshot:
// its Refresh is a no-op returning the snapshot size, never a move to
// a newer version — use WaitVersion + OpenVersion to tail instead.
func (r *fileReader) Refresh(ctx context.Context) (uint64, error) {
	if r.fixed {
		return r.size.Load(), nil
	}
	info, err := r.b.Latest(ctx)
	if err != nil {
		return 0, mapVerErr(err)
	}
	// Move the GC pin to the refreshed snapshot (pin first, then release
	// the old one, so the reader is never unprotected in between). This
	// also renews the lease, so long-lived tailing readers stay pinned.
	if r.pinTTL > 0 && info.Ver > 0 && info.Ver != r.pinned {
		if err := r.b.Pin(ctx, info.Ver, r.pinTTL); err != nil {
			return 0, mapVerErr(err)
		}
		r.unpin()
		r.pinned = info.Ver
		r.pinnedAt = time.Now()
	}
	r.ver.Store(info.Ver)
	r.size.Store(info.Size)
	// The current view may end short of the refreshed size mid-block;
	// drop it so the next read sees the grown block.
	r.buf = nil
	return info.Size, nil
}
