// Package bsfs implements the BlobSeer File System of the paper (§3.2):
// "an additional layer on top of the BlobSeer service ... a centralized
// namespace manager, which is responsible for maintaining a file system
// namespace, and for mapping files to BLOBs", plus the client-side
// caching mechanism that buffers whole blocks, and the primitive that
// exposes page distribution to the Map/Reduce scheduler.
//
// Every file is backed by one BLOB; appends go to the BLOB (fully
// concurrent thanks to versioning) and the file size is updated at the
// namespace manager, exactly the two-step translation the paper
// describes.
package bsfs

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/dfs"
	"blobseer/internal/kvlog"
	"blobseer/internal/obs"
	"blobseer/internal/rpc"
	"blobseer/internal/transport"
	"blobseer/internal/wire"
)

// SvcNamespace is the namespace manager's service name.
const SvcNamespace = "bsfs-ns"

// Namespace manager methods.
var (
	NSCreate     = rpc.M(1, "ns.Create")
	NSLookup     = rpc.M(2, "ns.Lookup")
	NSUpdateSize = rpc.M(3, "ns.UpdateSize")
	NSList       = rpc.M(4, "ns.List")
	NSRename     = rpc.M(5, "ns.Rename")
	NSDelete     = rpc.M(6, "ns.Delete")
	NSMkdir      = rpc.M(7, "ns.Mkdir")
	NSEntries    = rpc.M(8, "ns.Entries")
)

//
// Messages.
//

// CreateReq creates (or opens for append) the file at Path.
type CreateReq struct {
	Path      string
	PageSize  uint64
	Exclusive bool // fail with dfs.ErrExists when the file exists
}

// AppendTo implements wire.Marshaler.
func (m *CreateReq) AppendTo(b []byte) []byte {
	b = wire.AppendString(b, m.Path)
	b = wire.AppendUvarint(b, m.PageSize)
	return wire.AppendBool(b, m.Exclusive)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *CreateReq) DecodeFrom(r *wire.Reader) error {
	m.Path = r.String()
	m.PageSize = r.Uvarint()
	m.Exclusive = r.Bool()
	return r.Err()
}

// EntryResp describes a namespace entry.
type EntryResp struct {
	Blob     uint64
	PageSize uint64
	Size     uint64
	IsDir    bool
}

// AppendTo implements wire.Marshaler.
func (m *EntryResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Blob)
	b = wire.AppendUvarint(b, m.PageSize)
	b = wire.AppendUvarint(b, m.Size)
	return wire.AppendBool(b, m.IsDir)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *EntryResp) DecodeFrom(r *wire.Reader) error {
	m.Blob = r.Uvarint()
	m.PageSize = r.Uvarint()
	m.Size = r.Uvarint()
	m.IsDir = r.Bool()
	return r.Err()
}

// UpdateSizeReq raises the namespace's cached size for a file.
type UpdateSizeReq struct {
	Path string
	Size uint64
}

// AppendTo implements wire.Marshaler.
func (m *UpdateSizeReq) AppendTo(b []byte) []byte {
	b = wire.AppendString(b, m.Path)
	return wire.AppendUvarint(b, m.Size)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *UpdateSizeReq) DecodeFrom(r *wire.Reader) error {
	m.Path = r.String()
	m.Size = r.Uvarint()
	return r.Err()
}

//
// Server.
//

// nsEntry is one namespace record. For files, Size is the monotonic
// cached size reported by appenders; the BLOB's published size is
// authoritative.
type nsEntry struct {
	isDir    bool
	blob     uint64
	pageSize uint64
	size     uint64
}

// NamespaceManager is BSFS's centralized namespace manager. It owns the
// file-system tree and the file→BLOB mapping; BLOBs are created through
// the version manager on demand.
//
// With a journal path the namespace is durable: every entry mutation
// (create, mkdir, size update, rename, delete) is persisted to a kvlog
// store — keyed "e/<path>", write-ahead under ns.mu — before it is
// acknowledged, and a restart replays the store into the map. The store
// is the live mapping, not an op log, so replay is a plain scan and
// size-update churn is bounded by compaction.
type NamespaceManager struct {
	srv *rpc.Server
	bc  *blob.Client // for creating BLOBs

	mu      sync.Mutex
	entries map[string]*nsEntry
	kv      *kvlog.Store // nil: in-memory namespace
}

// nsCompactThreshold is the journal dead-bytes bound: every UpdateSize
// overwrites the file's record, so an append-heavy workload churns the
// store and a restart should not replay that churn.
const nsCompactThreshold = 1 << 20

// NewNamespaceManager starts an in-memory namespace manager at addr;
// bc is used to create one BLOB per new file.
func NewNamespaceManager(net transport.Network, addr transport.Addr, bc *blob.Client) (*NamespaceManager, error) {
	return NewDurableNamespaceManager(net, addr, bc, "")
}

// NewDurableNamespaceManager starts a namespace manager journaling to
// journalPath (empty = in-memory). An existing journal is replayed
// before the endpoint binds.
func NewDurableNamespaceManager(net transport.Network, addr transport.Addr, bc *blob.Client, journalPath string) (*NamespaceManager, error) {
	ns := &NamespaceManager{
		bc:      bc,
		entries: map[string]*nsEntry{"/": {isDir: true}},
	}
	if journalPath != "" {
		kv, err := kvlog.Open(journalPath, kvlog.Options{})
		if err != nil {
			return nil, err
		}
		err = kv.Scan(func(key string, value []byte) error {
			if !strings.HasPrefix(key, "e/") {
				return nil
			}
			e, err := decodeNSEntry(value)
			if err != nil {
				return err
			}
			ns.entries[key[2:]] = e
			return nil
		})
		if err != nil {
			kv.Close()
			return nil, err
		}
		ns.kv = kv
	}
	srv, err := rpc.NewServer(net, addr)
	if err != nil {
		if ns.kv != nil {
			ns.kv.Close()
		}
		return nil, err
	}
	ns.srv = srv
	srv.Handle(NSCreate, ns.handleCreate)
	srv.Handle(NSLookup, ns.handleLookup)
	srv.Handle(NSUpdateSize, ns.handleUpdateSize)
	srv.Handle(NSList, ns.handleList)
	srv.Handle(NSRename, ns.handleRename)
	srv.Handle(NSDelete, ns.handleDelete)
	srv.Handle(NSMkdir, ns.handleMkdir)
	srv.Handle(NSEntries, ns.handleEntries)
	return ns, nil
}

// Addr returns the manager's endpoint.
func (ns *NamespaceManager) Addr() transport.Addr { return ns.srv.Addr() }

// Durable reports whether this manager journals entries to disk.
func (ns *NamespaceManager) Durable() bool { return ns.kv != nil }

// JournalOpen reports whether the durable journal still accepts
// operations; an in-memory manager has no journal to lose and reports
// true. The /healthz namespace check watches it.
func (ns *NamespaceManager) JournalOpen() bool {
	if ns.kv == nil {
		return true
	}
	return ns.kv.Open()
}

// EntryCount reports how many namespace records the manager holds.
func (ns *NamespaceManager) EntryCount() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return len(ns.entries)
}

// MonitorSample reports the manager's live stats in the cluster
// monitor's sample shape.
func (ns *NamespaceManager) MonitorSample() map[string]float64 {
	s := map[string]float64{
		"entries": float64(ns.EntryCount()),
	}
	if ns.kv != nil {
		total, _ := ns.kv.Size()
		s["journal_bytes"] = float64(total)
	}
	return s
}

// Close stops the manager.
func (ns *NamespaceManager) Close() error {
	err := ns.srv.Close()
	if ns.kv != nil {
		ns.mu.Lock()
		cerr := ns.kv.Close()
		ns.mu.Unlock()
		if err == nil {
			err = cerr
		}
	}
	return err
}

func encodeNSEntry(e *nsEntry) []byte {
	b := wire.AppendBool(nil, e.isDir)
	b = wire.AppendUvarint(b, e.blob)
	b = wire.AppendUvarint(b, e.pageSize)
	return wire.AppendUvarint(b, e.size)
}

func decodeNSEntry(data []byte) (*nsEntry, error) {
	r := wire.NewReader(data)
	e := &nsEntry{
		isDir:    r.Bool(),
		blob:     r.Uvarint(),
		pageSize: r.Uvarint(),
		size:     r.Uvarint(),
	}
	return e, r.Err()
}

// logPutLocked persists path→e write-ahead; on error the caller must
// not mutate the map. Caller holds ns.mu.
func (ns *NamespaceManager) logPutLocked(path string, e *nsEntry) error {
	if ns.kv == nil {
		return nil
	}
	if err := ns.kv.Put("e/"+path, encodeNSEntry(e)); err != nil {
		return err
	}
	ns.maybeCompactLocked()
	return nil
}

// logDeleteLocked removes path's record write-ahead. Caller holds ns.mu.
func (ns *NamespaceManager) logDeleteLocked(path string) error {
	if ns.kv == nil {
		return nil
	}
	if err := ns.kv.Delete("e/" + path); err != nil {
		return err
	}
	ns.maybeCompactLocked()
	return nil
}

func (ns *NamespaceManager) maybeCompactLocked() {
	total, live := ns.kv.Size()
	if total-live >= nsCompactThreshold {
		// Best effort: a failed compaction leaves a bigger but intact
		// journal.
		if err := ns.kv.Compact(); err != nil {
			obs.Log.Warnf("bsfs: namespace journal compaction: %v", err)
		}
	}
}

// mkdirAllLocked creates dir and its ancestors; fails if a path
// component is a file.
func (ns *NamespaceManager) mkdirAllLocked(dir string) error {
	for _, p := range append(dfs.Ancestors(dir), dir) {
		if p == "/" {
			continue
		}
		e, ok := ns.entries[p]
		if !ok {
			d := &nsEntry{isDir: true}
			if err := ns.logPutLocked(p, d); err != nil {
				return err
			}
			ns.entries[p] = d
			continue
		}
		if !e.isDir {
			return dfs.ErrNotDir
		}
	}
	return nil
}

func (ns *NamespaceManager) handleCreate(r *wire.Reader) (wire.Marshaler, error) {
	var req CreateReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	path, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	if path == "/" {
		return nil, dfs.ErrIsDir
	}

	ns.mu.Lock()
	if e, ok := ns.entries[path]; ok {
		defer ns.mu.Unlock()
		if e.isDir {
			return nil, dfs.ErrIsDir
		}
		if req.Exclusive {
			return nil, dfs.ErrExists
		}
		return &EntryResp{Blob: e.blob, PageSize: e.pageSize, Size: e.size}, nil
	}
	if err := ns.mkdirAllLocked(dfs.Parent(path)); err != nil {
		ns.mu.Unlock()
		return nil, err
	}
	ns.mu.Unlock()

	// Create the backing BLOB outside the lock (network I/O).
	//lint:detached the wire handler surface carries no caller ctx; the 30s deadline bounds the create
	ctx, cancel := context.WithTimeout(context.Background(), 30e9)
	bl, err := ns.bc.Create(ctx, req.PageSize)
	cancel()
	if err != nil {
		return nil, err
	}

	ns.mu.Lock()
	if e, ok := ns.entries[path]; ok {
		// Lost a create race; the other BLOB wins. Retire ours through
		// the garbage collector instead of leaking it. Copy the winner's
		// fields under the lock — concurrent NSUpdateSize writes e.size.
		resp := EntryResp{Blob: e.blob, PageSize: e.pageSize, Size: e.size, IsDir: e.isDir}
		ns.mu.Unlock()
		ns.deleteBlobDetached(bl.ID())
		if resp.IsDir {
			return nil, dfs.ErrIsDir
		}
		if req.Exclusive {
			return nil, dfs.ErrExists
		}
		return &resp, nil
	}
	e := &nsEntry{blob: bl.ID(), pageSize: req.PageSize}
	if err := ns.logPutLocked(path, e); err != nil {
		ns.mu.Unlock()
		ns.deleteBlobDetached(bl.ID())
		return nil, err
	}
	ns.entries[path] = e
	ns.mu.Unlock()
	return &EntryResp{Blob: bl.ID(), PageSize: req.PageSize}, nil
}

// deleteBlobDetached retires a BLOB in the background, on a context
// independent of the triggering request.
func (ns *NamespaceManager) deleteBlobDetached(id uint64) {
	go func() {
		//lint:detached retirement must outlive the request that lost the create race; the 30s deadline bounds it
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := ns.bc.DeleteBlob(ctx, id); err != nil {
			// The BLOB is orphaned until an operator reaps it — worth
			// surfacing.
			obs.Log.Warnf("bsfs: detached retire of blob %d: %v", id, err)
		}
	}()
}

func (ns *NamespaceManager) handleLookup(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	path, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e, ok := ns.entries[path]
	if !ok {
		return nil, dfs.ErrNotExist
	}
	return &EntryResp{Blob: e.blob, PageSize: e.pageSize, Size: e.size, IsDir: e.isDir}, nil
}

func (ns *NamespaceManager) handleUpdateSize(r *wire.Reader) (wire.Marshaler, error) {
	var req UpdateSizeReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	path, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e, ok := ns.entries[path]
	if !ok {
		return nil, dfs.ErrNotExist
	}
	if e.isDir {
		return nil, dfs.ErrIsDir
	}
	if req.Size > e.size {
		old := e.size
		e.size = req.Size
		if err := ns.logPutLocked(path, e); err != nil {
			e.size = old
			return nil, err
		}
	}
	return nil, nil
}

func (ns *NamespaceManager) handleList(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	dir, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e, ok := ns.entries[dir]
	if !ok {
		return nil, dfs.ErrNotExist
	}
	if !e.isDir {
		return nil, dfs.ErrNotDir
	}
	prefix := dir
	if prefix != "/" {
		prefix += "/"
	}
	var resp dfs.ListResp
	for p, ent := range ns.entries {
		if p == "/" || !strings.HasPrefix(p, prefix) {
			continue
		}
		if strings.ContainsRune(p[len(prefix):], '/') {
			continue // not a direct child
		}
		blocks := uint64(0)
		if ent.pageSize > 0 {
			blocks = (ent.size + ent.pageSize - 1) / ent.pageSize
		}
		resp.Infos = append(resp.Infos, dfs.FileInfo{
			Path: p, IsDir: ent.isDir, Size: ent.size, Blocks: blocks,
		})
	}
	sort.Slice(resp.Infos, func(i, j int) bool { return resp.Infos[i].Path < resp.Infos[j].Path })
	return &resp, nil
}

func (ns *NamespaceManager) handleRename(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathPairReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	src, err := dfs.CleanPath(req.Src)
	if err != nil {
		return nil, err
	}
	dst, err := dfs.CleanPath(req.Dst)
	if err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e, ok := ns.entries[src]
	if !ok {
		return nil, dfs.ErrNotExist
	}
	if e.isDir {
		return nil, dfs.ErrIsDir
	}
	if d, ok := ns.entries[dst]; ok && d.isDir {
		return nil, dfs.ErrIsDir
	}
	if err := ns.mkdirAllLocked(dfs.Parent(dst)); err != nil {
		return nil, err
	}
	// Journal dst before src: a crash between the two leaves both paths
	// naming the same BLOB (data never lost), and the survivor wins on
	// the next delete/rename of either path.
	if err := ns.logPutLocked(dst, e); err != nil {
		return nil, err
	}
	if err := ns.logDeleteLocked(src); err != nil {
		return nil, err
	}
	delete(ns.entries, src)
	ns.entries[dst] = e
	return nil, nil
}

func (ns *NamespaceManager) handleDelete(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	path, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	if path == "/" {
		return nil, dfs.ErrInvalidPath
	}
	ns.mu.Lock()
	e, ok := ns.entries[path]
	if !ok {
		ns.mu.Unlock()
		return nil, dfs.ErrNotExist
	}
	isDir, blobID := e.isDir, e.blob
	if isDir {
		prefix := path + "/"
		for p := range ns.entries {
			if strings.HasPrefix(p, prefix) {
				ns.mu.Unlock()
				return nil, dfs.ErrNotEmpty
			}
		}
		if err := ns.logDeleteLocked(path); err != nil {
			ns.mu.Unlock()
			return nil, err
		}
		delete(ns.entries, path)
		ns.mu.Unlock()
		return nil, nil
	}
	ns.mu.Unlock()

	// Deleting a file retires its backing BLOB: the version manager
	// marks every version dead and the garbage collector reclaims the
	// pages — dropping the namespace entry alone would leave the data
	// pinned on every provider forever. Retire FIRST (outside the lock),
	// so a failed retirement leaves the entry in place and the caller's
	// retry tries again, instead of leaking an orphaned BLOB behind a
	// half-done delete.
	if blobID != 0 {
		//lint:detached the wire handler surface carries no caller ctx; the 30s deadline bounds the retire
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := ns.bc.DeleteBlob(ctx, blobID); err != nil {
			return nil, err
		}
	}
	ns.mu.Lock()
	// Drop the entry only if it is still the one whose BLOB we retired:
	// a concurrent rename/recreate made a new entry under this path,
	// and that one's BLOB is untouched.
	if cur, ok := ns.entries[path]; ok && cur == e {
		if err := ns.logDeleteLocked(path); err != nil {
			// The BLOB is already retired; the entry stays and the
			// caller's retry re-deletes (DeleteBlob is idempotent).
			ns.mu.Unlock()
			return nil, err
		}
		delete(ns.entries, path)
	}
	ns.mu.Unlock()
	return nil, nil
}

func (ns *NamespaceManager) handleMkdir(r *wire.Reader) (wire.Marshaler, error) {
	var req dfs.PathReq
	if err := req.DecodeFrom(r); err != nil {
		return nil, err
	}
	path, err := dfs.CleanPath(req.Path)
	if err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if err := ns.mkdirAllLocked(path); err != nil {
		return nil, err
	}
	return nil, nil
}

func (ns *NamespaceManager) handleEntries(r *wire.Reader) (wire.Marshaler, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return &dfs.CountResp{Count: uint64(len(ns.entries))}, nil
}
