package bsfs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/dfs"
	"blobseer/internal/transport"
)

// newGCDeployment is newDeployment with direct cluster access for
// provider-storage assertions.
func newGCDeployment(t *testing.T, blockSize uint64) (*blob.Cluster, *Deployment) {
	t.Helper()
	cluster, err := blob.NewCluster(transport.NewMemNet(), blob.ClusterConfig{
		Providers: 4, MetaProviders: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	d, err := Deploy(cluster, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return cluster, d
}

// TestDeleteFreesProviderStorage is the regression test for the
// pre-GC leak: NamespaceManager.handleDelete dropped the namespace
// entry but left the backing BLOB's pages pinned on every provider
// forever. Deleting a file must now retire the BLOB and, after a
// reclaim pass, actually free provider storage.
func TestDeleteFreesProviderStorage(t *testing.T) {
	cluster, d := newGCDeployment(t, 1024)
	fs := mount(t, d, "cli")

	data := pattern(3, 8*1024)
	if err := dfs.WriteFile(ctx, fs, "/data/doomed", data); err != nil {
		t.Fatal(err)
	}
	before := cluster.ProviderBytes()
	if before == 0 {
		t.Fatal("expected provider storage before delete")
	}

	if err := fs.Delete(ctx, "/data/doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GC.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := cluster.ProviderBytes(); got != 0 {
		t.Errorf("provider bytes after delete = %d, want 0 (was %d)", got, before)
	}
	// The namespace entry is gone too.
	if _, err := fs.Stat(ctx, "/data/doomed"); !errors.Is(err, dfs.ErrNotExist) {
		t.Errorf("stat after delete = %v, want ErrNotExist", err)
	}
	// Re-creating the path works and reads back its own content.
	if err := dfs.WriteFile(ctx, fs, "/data/doomed", pattern(4, 2048)); err != nil {
		t.Fatal(err)
	}
	got, err := dfs.ReadAll(ctx, fs, "/data/doomed")
	if err != nil || !bytes.Equal(got, pattern(4, 2048)) {
		t.Fatalf("re-created file read: err=%v", err)
	}
}

// TestReaderPinBlocksCollection is the deterministic slow-reader test:
// an open reader pins its snapshot, so deleting the file and running a
// GC pass must NOT reclaim the version under it — the in-progress
// ReadAt finishes with perfect bytes. Closing the reader releases the
// pin and the next pass collects.
func TestReaderPinBlocksCollection(t *testing.T) {
	cluster, d := newGCDeployment(t, 1024)
	fs := mount(t, d, "cli")

	data := pattern(9, 6*1024)
	if err := dfs.WriteFile(ctx, fs, "/data/pinned", data); err != nil {
		t.Fatal(err)
	}

	r, err := fs.Open(ctx, "/data/pinned")
	if err != nil {
		t.Fatal(err)
	}
	// The slow read starts: one block consumed, the rest still pending.
	head := make([]byte, 1024)
	if _, err := io.ReadFull(r, head); err != nil {
		t.Fatal(err)
	}

	if err := fs.Delete(ctx, "/data/pinned"); err != nil {
		t.Fatal(err)
	}
	rep, err := d.GC.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PinsBlocked == 0 {
		t.Fatalf("expected the reader pin to block collection, report %+v", rep)
	}
	if cluster.ProviderBytes() == 0 {
		t.Fatal("pinned snapshot's pages were reclaimed under an open reader")
	}

	// The reader finishes its slow scan: every remaining byte correct.
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("pinned read failed mid-GC: %v", err)
	}
	if !bytes.Equal(append(head, rest...), data) {
		t.Fatal("pinned reader returned wrong bytes")
	}

	// Close releases the pin; the next pass reclaims everything.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GC.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := cluster.ProviderBytes(); got != 0 {
		t.Errorf("provider bytes after reader close = %d, want 0", got)
	}
}

// TestShuffleStyleBlobRetirement: deleting one of two files frees only
// its own pages — the survivor stays fully readable.
func TestDeleteIsSelective(t *testing.T) {
	cluster, d := newGCDeployment(t, 1024)
	fs := mount(t, d, "cli")

	keep := pattern(1, 4096)
	if err := dfs.WriteFile(ctx, fs, "/data/keep", keep); err != nil {
		t.Fatal(err)
	}
	if err := dfs.WriteFile(ctx, fs, "/data/drop", pattern(2, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(ctx, "/data/drop"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GC.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := cluster.ProviderBytes(); got != 4096 {
		t.Errorf("provider bytes = %d, want exactly the surviving file's 4096", got)
	}
	got, err := dfs.ReadAll(ctx, fs, "/data/keep")
	if err != nil || !bytes.Equal(got, keep) {
		t.Fatalf("survivor read: err=%v", err)
	}
}
