package analysis

import (
	"go/ast"
	"go/types"
)

// WallTime keeps clock-carrying packages deterministic: a package
// that injects a clock (a `func() time.Time` field, the monitor/gc
// convention) must route every time read through it, or its tests
// silently fall back to real sleeps and wall-clock flakiness.
//
// The check applies to the packages listed in clockPackages plus any
// package that declares an injected-clock field; inside those, direct
// calls to time.Now, time.Sleep, time.Since, time.Until, time.After,
// time.AfterFunc, time.Tick, time.NewTimer, and time.NewTicker are
// flagged. Wall-clock-by-design sites (a periodic collector's ticker
// cadence) justify with `//lint:walltime <reason>`.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "flag direct wall-clock reads in packages that carry an injected clock",
	Run:  runWallTime,
}

// clockPackages are the packages whose determinism contract demands
// the injected clock even for code paths that do not yet have one —
// growing a new wall-time call here is how flaky tests start.
var clockPackages = map[string]bool{
	"blobseer/internal/monitor": true,
	"blobseer/internal/flight":  true,
	"blobseer/internal/cache":   true,
	"blobseer/internal/gc":      true,
}

// wallTimeFuncs are the time package entry points that read or wait
// on the wall clock.
var wallTimeFuncs = []string{
	"Now", "Sleep", "Since", "Until", "After", "AfterFunc", "Tick", "NewTimer", "NewTicker",
}

func runWallTime(pass *Pass) error {
	if !clockPackages[pass.Pkg.Path()] && !declaresClockField(pass) {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range wallTimeFuncs {
				if isPkgCall(pass.TypesInfo, call, "time", name) {
					pass.Reportf(call.Pos(), "direct time.%s in a clock-carrying package: thread the injected clock (or justify with %swalltime)",
						name, markerPrefix)
					return true
				}
			}
			return true
		})
	}
	return nil
}

// declaresClockField reports whether any struct type in the package
// has a field of type func() time.Time — the injected-clock idiom.
func declaresClockField(pass *Pass) bool {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isClockFunc(st.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// isClockFunc matches `func() time.Time`.
func isClockFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Time"
}
