package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestAnalyzerFixtures drives every analyzer over its testdata
// fixture, analysistest-style: each `// want "re"` comment must be
// matched by exactly one diagnostic on its line, and no diagnostic
// may go unclaimed. This covers positive findings, negatives, and the
// justification-marker paths in one pass per analyzer.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			problems, err := CheckFixture(a, filepath.Join("testdata", a.Name))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// TestReasonlessMarkerIsAViolation: a bare `//lint:<key>` with no
// reason must be reported itself AND must fail to justify its site —
// otherwise markers degrade into silent suppressions.
func TestReasonlessMarkerIsAViolation(t *testing.T) {
	dir := filepath.Join("testdata", "badmarker")
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "fixture/badmarker")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{DroppedErr})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (marker + unjustified site): %v", len(diags), diags)
	}
	var sawMarker, sawDrop bool
	for _, d := range diags {
		switch d.Analyzer {
		case "marker":
			sawMarker = true
			if !strings.Contains(d.Message, "no reason") {
				t.Errorf("marker diagnostic %q does not mention the missing reason", d.Message)
			}
		case "droppederr":
			sawDrop = true
		}
	}
	if !sawMarker || !sawDrop {
		t.Errorf("marker=%v droppederr=%v, want both: %v", sawMarker, sawDrop, diags)
	}
}

// TestWallTimeSkipsClocklessPackages: a package with no injected
// clock and not on the clockPackages list is outside walltime's
// contract entirely.
func TestWallTimeSkipsClocklessPackages(t *testing.T) {
	dir := filepath.Join("testdata", "clockless")
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "fixture/clockless")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{WallTime})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("walltime flagged a clockless package: %v", diags)
	}
}

// TestLoaderResolvesModuleAndStdlib: the source-based loader must
// type-check a fixture that imports both a module-local package (obs)
// and stdlib — the exact resolution path bslint depends on.
func TestLoaderResolvesModuleAndStdlib(t *testing.T) {
	dir := filepath.Join("testdata", "spanend")
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "fixture/spanend")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types == nil || pkg.TypesInfo == nil {
		t.Fatal("loaded package has no type information")
	}
	if len(pkg.Files) == 0 {
		t.Fatal("loaded package has no files")
	}
}

// TestByName covers the cmd/bslint -only lookup path.
func TestByName(t *testing.T) {
	for _, a := range All() {
		got, ok := ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v", a.Name, got, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown analyzer")
	}
}
