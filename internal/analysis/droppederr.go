package analysis

import (
	"go/ast"
	"strings"
)

// DroppedErr flags silently discarded errors in production code:
//
//   - `_ = f()` (all-blank assignments) where f returns an error, and
//   - bare or deferred statement calls to *module-internal*
//     error-returning functions (`st.Close()` as a statement).
//
// The PR 7 convention is that a meaningful error is routed through
// obs.Log with context; a genuinely-ignorable one carries a
// `//lint:droppederr <reason>` marker so the why survives in the
// diff. Partial discards (`n, _ := f()`) keep a value and are left to
// review; stdlib bare calls (fmt.Fprintf to a strings.Builder and
// friends) are conventionally infallible and exempt.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "flag `_ =` and bare-call discards of error-returning expressions",
	Run:  runDroppedErr,
}

func runDroppedErr(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				checkBlankAssign(pass, stmt)
			case *ast.ExprStmt:
				checkBareCall(pass, stmt.X, "")
			case *ast.DeferStmt:
				checkBareCall(pass, stmt.Call, "deferred ")
			}
			return true
		})
	}
	return nil
}

// checkBlankAssign reports assignments that exist purely to discard
// an error: every left-hand side blank, at least one error on the
// right.
func checkBlankAssign(pass *Pass, stmt *ast.AssignStmt) {
	for _, lhs := range stmt.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return
		}
	}
	for _, rhs := range stmt.Rhs {
		if dropsError(pass, rhs) {
			pass.Reportf(stmt.Pos(), "error discarded with `_ =`: route it through obs.Log or justify with %sdroppederr", markerPrefix)
			return
		}
	}
}

func dropsError(pass *Pass, expr ast.Expr) bool {
	if call, ok := ast.Unparen(expr).(*ast.CallExpr); ok {
		return callReturnsError(pass.TypesInfo, call)
	}
	tv, ok := pass.TypesInfo.Types[expr]
	return ok && isErrorType(tv.Type)
}

// checkBareCall reports statement calls to module-internal functions
// whose error result vanishes. Close (and close) in statement
// position is exempt: discard-on-teardown is the accepted idiom, and
// a Close whose error matters is returned or logged at the call site
// that cares.
func checkBareCall(pass *Pass, expr ast.Expr, prefix string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || !callReturnsError(pass.TypesInfo, call) {
		return
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if !sameModule(pass.Pkg.Path(), fn.Pkg().Path()) {
		return
	}
	if strings.EqualFold(fn.Name(), "close") {
		return
	}
	pass.Reportf(call.Pos(), "%serror result of %s dropped: check it, log it via obs.Log, or justify with %sdroppederr",
		prefix, fn.Name(), markerPrefix)
}

// sameModule reports whether two import paths share a first path
// element — the module boundary for a single-module tree.
func sameModule(a, b string) bool {
	first := func(p string) string {
		if i := strings.IndexByte(p, '/'); i >= 0 {
			return p[:i]
		}
		return p
	}
	return first(a) == first(b)
}
