package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string // import path ("blobseer/internal/obs")
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages from source: module-local
// packages rooted at the repo's go.mod, everything else from
// GOROOT/src. It exists because the x/tools loading stack
// (go/packages) is not importable here — the module is deliberately
// dependency-free and the build environment has no module proxy — and
// `go vet`-style export data is not available when bslint runs
// standalone. Source-checking the stdlib closure once per process is
// the price; the cache makes every subsequent package cheap.
type Loader struct {
	Fset *token.FileSet

	ctxt       build.Context
	moduleRoot string
	modulePath string

	pkgs    map[string]*types.Package
	full    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	// Pure-Go file selection: cgo variants would drag in import "C"
	// paths go/types cannot check from source. Every package in this
	// tree (and every stdlib package it imports) has a nocgo fallback.
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:       token.NewFileSet(),
		ctxt:       ctxt,
		moduleRoot: root,
		modulePath: modPath,
		pkgs:       make(map[string]*types.Package),
		full:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// ModuleRoot returns the directory holding the module's go.mod.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// ModulePath returns the module's import-path prefix.
func (l *Loader) ModulePath() string { return l.modulePath }

// findModule walks up from dir to the enclosing go.mod and parses the
// module path from its first `module` directive.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
	}
}

// dirFor resolves an import path to a source directory.
func (l *Loader) dirFor(path string) (string, error) {
	if path == l.modulePath {
		return l.moduleRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleRoot, filepath.FromSlash(rest)), nil
	}
	// Stdlib, including its vendored golang.org/x dependencies
	// (net -> vendor/golang.org/x/net/dns/dnsmessage and friends).
	for _, sub := range []string{"src", filepath.Join("src", "vendor")} {
		dir := filepath.Join(l.ctxt.GOROOT, sub, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q (not in module %s or GOROOT)", path, l.modulePath)
}

// Import implements types.Importer for dependency resolution during
// type checking. Module-local dependencies are loaded in full (they
// may also be analysis targets, and a package must have exactly one
// types identity per loader); external dependencies are checked
// without retaining ASTs or type-use info.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	pkg, _, _, err := l.check(path, dir, false)
	return pkg, err
}

// LoadDir parses and type-checks the package in dir under the given
// import path, retaining its syntax and types.Info for analysis.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.full[path]; ok {
		return pkg, nil
	}
	tpkg, files, info, err := l.check(path, dir, true)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.full[path] = pkg
	return pkg, nil
}

// check does the load: build-tag-filtered file list, parse, type check
// with this loader as the importer.
func (l *Loader) check(path, dir string, keep bool) (*types.Package, []*ast.File, *types.Info, error) {
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}

	var info *types.Info
	if keep {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	conf := types.Config{
		Importer: l,
		// The loader checks real GOROOT sources; anything the compiler
		// accepts must check, including constructs gated on internal
		// consistency (e.g. unsafe tricks in runtime deps).
		Sizes: types.SizesFor(l.ctxt.Compiler, l.ctxt.GOARCH),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	l.pkgs[path] = tpkg
	return tpkg, files, info, nil
}

// Load expands patterns into module packages and loads each. Patterns
// are the familiar `./...` (whole module), `./x/y` (one directory),
// or bare module-relative import paths.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.moduleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.modulePath
		if rel != "." {
			path = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand turns patterns into the sorted set of package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.moduleRoot, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir, err := l.patternDir(base)
			if err != nil {
				return nil, err
			}
			if err := l.walk(dir, add); err != nil {
				return nil, err
			}
		default:
			dir, err := l.patternDir(pat)
			if err != nil {
				return nil, err
			}
			if !l.buildable(dir) {
				return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
			}
			add(dir)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// patternDir maps one non-wildcard pattern to a directory.
func (l *Loader) patternDir(pat string) (string, error) {
	if strings.HasPrefix(pat, "./") || pat == "." {
		return filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./"))), nil
	}
	return l.dirFor(pat)
}

// walk collects every buildable package directory under root,
// skipping testdata, hidden, and underscore-prefixed directories.
func (l *Loader) walk(root string, add func(string)) error {
	return filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if l.buildable(p) {
			add(p)
		}
		return nil
	})
}

func (l *Loader) buildable(dir string) bool {
	bp, err := l.ctxt.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}
