package analysis

import (
	"go/ast"
	"strings"
)

// CtxFlow enforces the context-threading contract on the RPC-reachable
// surface:
//
//   - context.Background() is banned outside package main and tests —
//     a detached context silently severs tracing and cancellation.
//     Deliberately-detached cleanup paths (the PR 5 snapshot-Close
//     pattern: release a lease even though the caller's ctx died)
//     justify with `//lint:detached <reason>`.
//   - context.TODO() is banned everywhere outside tests: production
//     code has no "figure it out later".
//   - An exported function or method that issues RPC calls or starts
//     spans must take a context.Context first parameter, so callers
//     can cancel it and traces stay connected. Functions whose whole
//     point is detached cleanup (and say so with a justified
//     //lint:detached site inside) are exempt.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context must thread from API surface to RPC/span calls; no detached contexts without justification",
	Run:  runCtxFlow,
}

// detachedMarker is ctxflow's justification key: the exception is
// about detachment, not about the analyzer, so the marker reads as
// what the code means.
const detachedMarker = "detached"

func runCtxFlow(pass *Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgCall(pass.TypesInfo, call, "context", "TODO") {
				pass.Reportf(call.Pos(), "context.TODO() in production code: thread a real context")
				return true
			}
			if !isMain && isPkgCall(pass.TypesInfo, call, "context", "Background") {
				if !pass.Justified(call.Pos(), detachedMarker) {
					pass.Reportf(call.Pos(), "context.Background() outside main severs tracing and cancellation: thread the caller's ctx or justify with %s%s",
						markerPrefix, detachedMarker)
				}
			}
			return true
		})
		if !isMain {
			checkExportedSignatures(pass, file)
		}
	}
	return nil
}

// checkExportedSignatures flags exported functions that issue RPC or
// span calls without taking a context first.
func checkExportedSignatures(pass *Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		// Interface-fixed signatures (io.Closer) cannot grow a ctx
		// parameter; their detached work is governed by the Background
		// ban instead.
		if fd.Recv != nil && fd.Name.Name == "Close" {
			continue
		}
		if takesContextFirst(pass, fd) || hasJustifiedDetachedSite(pass, fd.Body) {
			continue
		}
		if callName := firstCtxDemandingCall(pass, fd.Body); callName != "" {
			pass.Reportf(fd.Name.Pos(), "exported %s calls %s but takes no context.Context first parameter: callers cannot cancel it and traces disconnect",
				fd.Name.Name, callName)
		}
	}
}

func takesContextFirst(pass *Pass, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[params.List[0].Type]
	return ok && isContextType(tv.Type)
}

// firstCtxDemandingCall returns a description of the first direct
// RPC-call or span-start in body (nested function literals excluded —
// a goroutine the function spawns owns its own context decision).
func firstCtxDemandingCall(pass *Pass, body *ast.BlockStmt) string {
	var found string
	inspectShallow(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := rpcOrSpanCall(pass, call); name != "" {
			found = name
			return false
		}
		return true
	})
	return found
}

// rpcOrSpanCall classifies calls that demand a threaded context:
// rpc/dht Call and router/pool variants, and obs span starts.
func rpcOrSpanCall(pass *Pass, call *ast.CallExpr) string {
	info := pass.TypesInfo
	for _, pkg := range []string{"blobseer/internal/rpc", "blobseer/internal/dht"} {
		if isMethodOn(info, call, pkg, "", "Call") {
			return "rpc " + pkg[strings.LastIndexByte(pkg, '/')+1:] + ".Call"
		}
	}
	for _, name := range []string{"StartSpan", "StartTrace", "StartChild"} {
		if isPkgCall(info, call, "blobseer/internal/obs", name) {
			return "obs." + name
		}
	}
	return ""
}

// hasJustifiedDetachedSite reports whether body contains a
// context.Background() call covered by a //lint:detached marker —
// the signal that this function is a deliberate detached-cleanup
// path.
func hasJustifiedDetachedSite(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if ok && isPkgCall(pass.TypesInfo, call, "context", "Background") &&
			pass.Justified(call.Pos(), detachedMarker) {
			found = true
			return false
		}
		return true
	})
	return found
}
