package analysis

import (
	"go/ast"
	"go/types"
)

// SpanEnd guarantees spans are closed: every obs.StartSpan /
// StartTrace / StartChild / StartRemote result must reach an End call
// in the function that created it — directly, in a defer, or inside a
// deferred closure — or visibly escape (returned, stored, or passed
// on), in which case the receiver owns the End. A span that never
// ends never reaches the collector: the operation it timed vanishes
// from traces, tail sampling, and the flight recorder exactly when it
// mattered (the error path someone forgot).
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "every started obs span must reach End or escape to an owner",
	Run:  runSpanEnd,
}

const obsPath = "blobseer/internal/obs"

// spanStarters maps the obs constructors to the index of the span in
// their result list.
var spanStarters = map[string]int{
	"StartTrace":  1,
	"StartSpan":   1,
	"StartChild":  0,
	"StartRemote": 0,
}

func runSpanEnd(pass *Pass) error {
	if pass.Pkg.Path() == obsPath {
		return nil // the package defining spans builds them directly
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		funcScopes(file, func(name string, body *ast.BlockStmt) {
			checkSpanScope(pass, name, body)
		})
	}
	return nil
}

// checkSpanScope finds span starts assigned in this scope (nested
// literals excluded — a closure starting a span owns it) and verifies
// each span either Ends somewhere in the full function body
// (including deferred closures) or escapes.
func checkSpanScope(pass *Pass, name string, body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if fn, ok := starterCall(pass, stmt.X); ok {
				pass.Reportf(stmt.Pos(), "result of obs.%s discarded in %s: the span can never End", fn, name)
			}
		case *ast.AssignStmt:
			if len(stmt.Rhs) != 1 {
				return true
			}
			fn, ok := starterCall(pass, stmt.Rhs[0])
			if !ok {
				return true
			}
			idx := spanStarters[fn]
			if idx >= len(stmt.Lhs) {
				return true
			}
			id, okID := stmt.Lhs[idx].(*ast.Ident)
			if !okID {
				return true // span assigned straight into a field: the holder owns it
			}
			if id.Name == "_" {
				pass.Reportf(stmt.Pos(), "span from obs.%s discarded with `_` in %s: the span can never End", fn, name)
				return true
			}
			obj := spanObject(pass, id)
			if obj == nil {
				return true
			}
			if !spanHandled(pass, body, obj, id) {
				pass.Reportf(stmt.Pos(), "span %q from obs.%s never reaches End in %s and does not escape", id.Name, fn, name)
			}
		}
		return true
	})
}

// starterCall reports whether expr calls one of the obs span
// constructors, returning its name.
func starterCall(pass *Pass, expr ast.Expr) (string, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	for name := range spanStarters {
		if isPkgCall(pass.TypesInfo, call, obsPath, name) {
			return name, true
		}
	}
	return "", false
}

func spanObject(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// spanHandled reports whether the span object Ends or escapes within
// body. Unlike the start-site scan this walk descends into nested
// function literals: `defer func() { sp.End(err) }()` is the
// dominant idiom for annotate-then-end epilogues.
func spanHandled(pass *Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	handled := false
	parent := make(map[ast.Node]ast.Node)
	var prev []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			prev = prev[:len(prev)-1]
			return false
		}
		if len(prev) > 0 {
			parent[n] = prev[len(prev)-1]
		}
		prev = append(prev, n)
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if handled {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		switch p := parent[id].(type) {
		case *ast.SelectorExpr:
			// sp.End(...) ends it; sp.Annotate(...) and other method
			// calls are neutral.
			if call, ok := parent[p].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) && p.Sel.Name == "End" {
				handled = true
			}
		case *ast.BinaryExpr:
			// nil checks and comparisons are neutral.
		case *ast.AssignStmt:
			// Reassigning over the span is neutral on the LHS; on the
			// RHS it is stored somewhere — the new holder owns it.
			for _, rhs := range p.Rhs {
				if rhs == ast.Expr(id) {
					handled = true
				}
			}
		default:
			// Escapes: returned, passed as an argument, taken address
			// of, placed in a composite literal — ownership moved.
			handled = true
		}
		return true
	})
	return handled
}
