package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// recvNamed returns the named type of fn's receiver (through one
// pointer), or nil for non-methods.
func recvNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethodOn reports whether the call invokes a method named name
// (exact, or a prefix match when name ends in "*") on the named type
// pkgPath.typeName. An empty typeName matches any type in pkgPath.
func isMethodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	fn := calleeFunc(info, call)
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != pkgPath {
		return false
	}
	if typeName != "" && named.Obj().Name() != typeName {
		return false
	}
	return nameMatches(fn.Name(), name)
}

// isPkgCall reports whether the call invokes the package-level
// function pkgPath.name (name may end in "*" for a prefix match).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && nameMatches(fn.Name(), name)
}

func nameMatches(have, want string) bool {
	if prefix, ok := strings.CutSuffix(want, "*"); ok {
		return strings.HasPrefix(have, prefix)
	}
	return have == want
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error type.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// callReturnsError reports whether any result of the call has type
// error, and whether the call has results at all.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// funcScopes visits every function body in the file exactly once:
// each FuncDecl body and each FuncLit body, with nested FuncLits
// excluded from the enclosing visit (they run on their own goroutine
// or at least their own activation — analyses that track state across
// statements must not leak it into them). desc names the enclosing
// declaration for diagnostics.
func funcScopes(file *ast.File, visit func(name string, body *ast.BlockStmt)) {
	var walkLits func(name string, n ast.Node)
	walkLits = func(name string, n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok {
				visit(name+" (func literal)", lit.Body)
				walkLits(name, lit.Body)
				return false
			}
			return true
		})
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd.Body)
		walkLits(fd.Name.Name, fd.Body)
	}
}

// inspectShallow walks n but does not descend into function literals:
// statement-ordered analyses treat a nested closure as a separate
// scope (see funcScopes).
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}
