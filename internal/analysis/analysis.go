// Package analysis is the project's static-analysis suite: a small
// self-contained go/analysis-style framework plus the analyzers that
// machine-check this codebase's concurrency and hygiene invariants —
// the rules that keep BlobSeer's "lock-free reads under concurrent
// appends" claim true and that were previously enforced only by
// reviewer vigilance.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic; analysistest-style fixtures under
// testdata/src) but is built on the standard library alone
// (go/ast, go/types, go/build), so the module stays dependency-free:
// the environments this repo builds in cannot fetch modules, and the
// runtime tree must not grow a dependency for the sake of a linter.
//
// Analyzers:
//
//   - lockhold:   no blocking operation (rpc Call, transport dial,
//     channel send/receive, Wait*, kvlog append) while a sync.Mutex /
//     RWMutex is held in the enclosing function.
//   - ctxflow:    context flows: rpc/span calls thread the enclosing
//     context; context.Background() is banned outside main packages,
//     tests, and //lint:detached-justified cleanup sites.
//   - droppederr: no silent `_ =` or bare-call discards of
//     error-returning expressions in production code.
//   - walltime:   packages that carry an injected clock must not call
//     time.Now/Sleep/After/... directly.
//   - spanend:    every obs.StartSpan/StartChild/StartTrace/StartRemote
//     result reaches End (or escapes) in the function that created it.
//
// Exceptions are per-line justification markers the analyzers respect:
//
//	//lint:<analyzer> <reason>
//
// on the flagged line or the line above it. A marker without a reason
// is itself a violation — the point is that every exception carries
// its why in the diff. There is no package- or file-level suppression.
//
// cmd/bslint runs the whole suite over import patterns (`bslint ./...`)
// and is wired into CI as a hard gate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name is the analyzer's short identifier; it is also the
	// justification-marker key (`//lint:<name> reason`).
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// markers maps "file:line" to the marker keys justified on that
	// line (built once per package by the runner).
	markers map[string]map[string]bool

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless a justification marker for
// this analyzer covers the line (or the line above it).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.justified(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Justified reports whether a marker named key covers the line at pos
// or the line above it — for analyzers whose marker key differs from
// their name (ctxflow's `//lint:detached`).
func (p *Pass) Justified(pos token.Pos, key string) bool {
	position := p.Fset.Position(pos)
	return p.markerAt(position.Filename, position.Line, key) ||
		p.markerAt(position.Filename, position.Line-1, key)
}

func (p *Pass) justified(position token.Position) bool {
	return p.markerAt(position.Filename, position.Line, p.Analyzer.Name) ||
		p.markerAt(position.Filename, position.Line-1, p.Analyzer.Name)
}

func (p *Pass) markerAt(file string, line int, key string) bool {
	m := p.markers[fmt.Sprintf("%s:%d", file, line)]
	return m != nil && m[key]
}

// markerPrefix introduces a per-line justification comment:
// `//lint:<key> <reason>`.
const markerPrefix = "//lint:"

// buildMarkers scans every comment in the package for justification
// markers and indexes them by file:line. A marker with no reason text
// is reported as a violation in its own right by the runner.
func buildMarkers(fset *token.FileSet, files []*ast.File) (map[string]map[string]bool, []Diagnostic) {
	markers := make(map[string]map[string]bool)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, markerPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, markerPrefix)
				key, reason, _ := strings.Cut(rest, " ")
				key = strings.TrimSpace(key)
				if key == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(reason) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "marker",
						Pos:      pos,
						Message:  fmt.Sprintf("justification marker %q carries no reason", markerPrefix+key),
					})
					continue
				}
				lineKey := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if markers[lineKey] == nil {
					markers[lineKey] = make(map[string]bool)
				}
				markers[lineKey][key] = true
			}
		}
	}
	return markers, bad
}

// RunAnalyzers applies every analyzer to one loaded package and
// returns the findings, position-sorted.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	markers, bad := buildMarkers(pkg.Fset, pkg.Files)
	diags := bad
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			markers:   markers,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// isTestFile reports whether the position is inside a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
