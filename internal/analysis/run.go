package analysis

import "fmt"

// All returns the full analyzer suite in reporting order — the set
// cmd/bslint runs and CI gates on.
func All() []*Analyzer {
	return []*Analyzer{CtxFlow, DroppedErr, LockHold, SpanEnd, WallTime}
}

// ByName resolves a comma-free analyzer name against All.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run loads every package matched by patterns (relative to the module
// containing dir) and applies the analyzers, returning all findings.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		d, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			return diags, fmt.Errorf("analysis: %s: %w", pkg.Path, err)
		}
		diags = append(diags, d...)
	}
	return diags, nil
}
