package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// CheckFixture runs one analyzer over the fixture package in dir and
// verifies its findings against `// want "regexp"` comments, the
// analysistest convention: each want expectation must be matched by
// exactly one diagnostic on its line, and every diagnostic must be
// claimed by an expectation. Returned problems are human-readable
// mismatches; an empty slice means the fixture passed.
func CheckFixture(a *Analyzer, dir string) (problems []string, err error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := loader.LoadDir(dir, "fixture/"+a.Name)
	if err != nil {
		return nil, err
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		return nil, err
	}

	wants, err := collectWants(pkg)
	if err != nil {
		return nil, err
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.claimed && w.re.MatchString(d.Message) {
				w.claimed = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s: %s", d.Pos, d.Message))
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.claimed {
				problems = append(problems, fmt.Sprintf("no diagnostic at %s matching %q", key, w.re))
			}
		}
	}
	return problems, nil
}

type want struct {
	re      *regexp.Regexp
	claimed bool
}

// collectWants indexes the fixture's `// want` comments by file:line.
func collectWants(pkg *Package) (map[string][]*want, error) {
	wants := make(map[string][]*want)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, lit := range splitQuoted(text) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("fixture %s: bad want literal %s: %w", key, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("fixture %s: bad want pattern %q: %w", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted splits `"a" "b c"` into its quoted literals.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if len(s) == 0 || s[0] != '"' {
			return out
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}
