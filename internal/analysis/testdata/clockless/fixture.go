// Package fixture declares no injected clock and is not a listed
// clock package: walltime must stay silent here.
package fixture

import "time"

func stamp() time.Time {
	return time.Now()
}
