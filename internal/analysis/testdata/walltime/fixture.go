// Package fixture exercises the walltime analyzer. The clock field
// below marks this as a clock-carrying package, so direct wall-clock
// reads are violations.
package fixture

import "time"

type ticker struct {
	// now is the injected clock; referencing time.Now as a value to
	// initialize it is fine — only calls are flagged.
	now func() time.Time
}

func newTicker() *ticker { return &ticker{now: time.Now} }

func (t *ticker) stamp() time.Time {
	return t.now()
}

func direct() time.Time {
	return time.Now() // want "direct time.Now"
}

func sleepy() {
	time.Sleep(time.Millisecond) // want "direct time.Sleep"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "direct time.Since"
}

func justified() {
	//lint:walltime fixture demonstrates a wall-clock-by-design cadence
	time.Sleep(time.Millisecond)
}
