// Package fixture exercises the spanend analyzer.
package fixture

import (
	"context"

	"blobseer/internal/obs"
)

func discarded(ctx context.Context) {
	obs.StartSpan(ctx, "fixture.discarded") // want "discarded"
}

func blanked(ctx context.Context) {
	_, _ = obs.StartSpan(ctx, "fixture.blanked") // want "discarded with `_`"
}

func leaked(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "fixture.leaked") // want "never reaches End"
	sp.Annotate("n=%d", 1)
}

func ended(ctx context.Context) {
	ctx, sp := obs.StartSpan(ctx, "fixture.ended")
	_ = ctx
	sp.End(nil)
}

// deferredEnd uses the dominant epilogue idiom: the End lives inside
// a deferred closure.
func deferredEnd(ctx context.Context) (err error) {
	_, sp := obs.StartSpan(ctx, "fixture.deferred")
	defer func() { sp.End(err) }()
	return nil
}

// escapes hands the span to the caller, who owns the End.
func escapes(ctx context.Context) *obs.Span {
	sp := obs.StartChild(ctx, "fixture.escapes")
	return sp
}

// stored parks the span in a struct; the holder owns the End.
type holder struct{ sp *obs.Span }

func stored(ctx context.Context, h *holder) {
	sp := obs.StartChild(ctx, "fixture.stored")
	h.sp = sp
}

func justified(ctx context.Context) {
	//lint:spanend fixture demonstrates a justified leak
	_, sp := obs.StartSpan(ctx, "fixture.justified")
	sp.Annotate("leaked on purpose")
}
