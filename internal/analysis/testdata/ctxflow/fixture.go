// Package fixture exercises the ctxflow analyzer.
package fixture

import (
	"context"

	"blobseer/internal/obs"
)

func todoCall() context.Context {
	return context.TODO() // want "context.TODO"
}

func background() context.Context {
	return context.Background() // want "context.Background"
}

func justifiedDetached() context.Context {
	//lint:detached fixture demonstrates a justified detached context
	return context.Background()
}

// Traced starts a span but takes no context: callers cannot cancel it.
func Traced(name string) { // want "exported Traced calls obs.StartSpan"
	_, sp := obs.StartSpan(context.TODO(), name) // want "context.TODO"
	sp.End(nil)
}

// TracedOK threads the caller's context and stays unflagged.
func TracedOK(ctx context.Context, name string) {
	ctx, sp := obs.StartSpan(ctx, name)
	_ = ctx
	sp.End(nil)
}

// tracedUnexported is internal surface; the signature rule only
// covers exported functions.
func tracedUnexported(ctx context.Context) {
	sp := obs.StartChild(ctx, "fixture.unexported")
	sp.End(nil)
}

type handle struct{}

// Close has an io.Closer-fixed signature: exempt from the signature
// rule, and its detached context carries its own justification.
func (h *handle) Close() error {
	//lint:detached fixture: the release must outlive the caller
	ctx := context.Background()
	_, sp := obs.StartSpan(ctx, "fixture.close")
	sp.End(nil)
	return nil
}
