// Package fixture holds a justification marker with no reason: the
// framework must report the marker itself and still flag the site it
// failed to justify.
package fixture

import "errors"

func mayFail() error { return errors.New("nope") }

func unjustified() {
	//lint:droppederr
	_ = mayFail()
}
