// Package fixture exercises the lockhold analyzer.
package fixture

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	ch chan int
}

func (g *guarded) sleepUnderLock() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while g.mu is held"
	g.mu.Unlock()
}

// sleepAfterUnlock blocks only once the lock is released.
func (g *guarded) sleepAfterUnlock() {
	g.mu.Lock()
	g.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func (g *guarded) sendUnderDeferredUnlock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- 1 // want "channel send"
}

func (g *guarded) receiveUnderLock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want "channel receive"
}

// nonBlockingSelect cannot block: the default arm bails out.
func (g *guarded) nonBlockingSelect() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case g.ch <- 1:
	default:
	}
}

func (g *guarded) blockingSelect() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want "blocking select"
	case v := <-g.ch:
		return v
	}
}

func (g *guarded) waitUnderLock(wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want "Wait call"
	g.mu.Unlock()
}

// condWait is the one Wait that REQUIRES the lock held.
func (g *guarded) condWait(c *sync.Cond) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c.Wait()
}

// literalOwnsItsScope: the closure is a separate scope — no lock is
// held when it eventually runs.
func (g *guarded) literalOwnsItsScope() func() {
	g.mu.Lock()
	defer g.mu.Unlock()
	return func() {
		time.Sleep(time.Millisecond)
	}
}

func (g *guarded) justified() {
	g.mu.Lock()
	defer g.mu.Unlock()
	//lint:lockhold fixture demonstrates a WAL-ordering justification
	time.Sleep(time.Millisecond)
}
