// Package fixture exercises the droppederr analyzer: lines with
// `// want` expectations must be flagged, everything else must not.
package fixture

import "errors"

func mayFail() error { return errors.New("nope") }

func value() (int, error) { return 1, nil }

type thing struct{}

func (t *thing) Close() error { return nil }

func blankAssign() {
	_ = mayFail() // want "error discarded"
}

func blankPair() {
	_, _ = value() // want "error discarded"
}

func bareCall() {
	mayFail() // want "error result of mayFail dropped"
}

func deferredCall() {
	defer mayFail() // want "deferred error result of mayFail dropped"
}

// closeExempt: Close in statement position is the accepted teardown
// idiom and stays unflagged.
func closeExempt(t *thing) {
	t.Close()
	defer t.Close()
}

// partialKeep keeps a value; partial discards are left to review.
func partialKeep() int {
	n, _ := value()
	return n
}

func justified() {
	//lint:droppederr fixture demonstrates a justified discard
	_ = mayFail()
}

func justifiedSameLine() {
	_ = mayFail() //lint:droppederr the marker may sit on the flagged line itself
}
