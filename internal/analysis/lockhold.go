package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// LockHold flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held in the enclosing function — the deadlock (and
// tail-latency) class PR 9 designed around by firing OnCollect hooks
// outside the monitor's lock. Blocking means: rpc/dht Call, transport
// Dial/Listen, kvlog writes (Put/Delete/Compact/Sync), flight
// recorder appends, channel sends/receives (outside a select with a
// default), selects without a default, Wait* methods, and time.Sleep.
//
// The scan is statement-ordered and intraprocedural: a lock taken and
// released on the same linear path bounds the held region; `defer
// mu.Unlock()` holds to function end. Sites where holding the lock
// across the write IS the invariant (a WAL append that must be
// ordered with the state change it journals) justify with
// `//lint:lockhold <reason>`.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "no blocking operation while a sync mutex is held",
	Run:  runLockHold,
}

func runLockHold(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		funcScopes(file, func(name string, body *ast.BlockStmt) {
			checkLockScope(pass, name, body)
		})
	}
	return nil
}

// checkLockScope walks one function body in statement order tracking
// which mutexes are held.
func checkLockScope(pass *Pass, name string, body *ast.BlockStmt) {
	held := make(map[string]bool) // printed receiver expr -> held
	skip := make(map[ast.Node]bool)

	heldAny := func() (string, bool) {
		for k := range held {
			return k, true
		}
		return "", false
	}
	report := func(pos token.Pos, what string) {
		if lock, ok := heldAny(); ok {
			pass.Reportf(pos, "%s while %s is held in %s: blocking under a mutex stalls every contender (move it after Unlock or justify with %slockhold)",
				what, lock, name, markerPrefix)
		}
	}

	inspectShallow(body, func(n ast.Node) bool {
		if skip[n] {
			return true
		}
		switch stmt := n.(type) {
		case *ast.DeferStmt:
			if recv, kind := mutexOp(pass, stmt.Call); kind == opUnlock {
				held[recv] = true // held to function end
			}
			// A deferred blocking call runs after the function's own
			// unlocks; do not scan it against the current held set.
			skip[stmt.Call] = true

		case *ast.CallExpr:
			if recv, kind := mutexOp(pass, stmt); kind != opNone {
				if kind == opLock {
					held[recv] = true
				} else {
					delete(held, recv)
				}
				return true
			}
			if what := blockingCall(pass, stmt); what != "" {
				report(stmt.Pos(), what)
			}

		case *ast.SendStmt:
			report(stmt.Pos(), "channel send")

		case *ast.UnaryExpr:
			if stmt.Op == token.ARROW {
				report(stmt.Pos(), "channel receive")
			}

		case *ast.RangeStmt:
			if isChanExpr(pass, stmt.X) {
				report(stmt.Pos(), "range over channel")
			}

		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range stmt.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				// Non-blocking select: its comm guards cannot block;
				// keep scanning the clause bodies.
				for _, clause := range stmt.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						markCommOps(cc.Comm, skip)
					}
				}
			} else {
				report(stmt.Pos(), "blocking select")
				for _, clause := range stmt.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						markCommOps(cc.Comm, skip)
					}
				}
			}
		}
		return true
	})
}

// markCommOps marks the channel operations guarding a select clause
// so the generic send/receive visitors do not double-report them.
func markCommOps(comm ast.Stmt, skip map[ast.Node]bool) {
	ast.Inspect(comm, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.SendStmt, *ast.UnaryExpr:
			skip[n] = true
		}
		return true
	})
}

type mutexOpKind int

const (
	opNone mutexOpKind = iota
	opLock
	opUnlock
)

// mutexOp classifies sync.Mutex/RWMutex Lock/Unlock calls, returning
// the printed receiver expression as the held-set key.
func mutexOp(pass *Pass, call *ast.CallExpr) (string, mutexOpKind) {
	fn := calleeFunc(pass.TypesInfo, call)
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", opNone
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", opNone
	}
	var kind mutexOpKind
	switch fn.Name() {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	return exprString(pass.Fset, sel.X), kind
}

// blockingCall names the blocking operation a call performs, or "".
func blockingCall(pass *Pass, call *ast.CallExpr) string {
	info := pass.TypesInfo
	if isMethodOn(info, call, "blobseer/internal/rpc", "", "Call") ||
		isMethodOn(info, call, "blobseer/internal/dht", "", "Call") {
		return "rpc call"
	}
	if isMethodOn(info, call, "blobseer/internal/transport", "", "Dial") ||
		isMethodOn(info, call, "blobseer/internal/transport", "", "Listen") {
		return "transport dial/listen"
	}
	for _, m := range []string{"Put", "Delete", "Compact", "Sync"} {
		if isMethodOn(info, call, "blobseer/internal/kvlog", "Store", m) {
			return "kvlog " + m
		}
	}
	if isMethodOn(info, call, "blobseer/internal/flight", "Recorder", "Append") ||
		isMethodOn(info, call, "blobseer/internal/flight", "Recorder", "Record*") ||
		isMethodOn(info, call, "blobseer/internal/flight", "Recorder", "Sync") {
		return "flight-recorder append"
	}
	if fn := calleeFunc(info, call); fn != nil && nameMatches(fn.Name(), "Wait*") {
		named := recvNamed(fn)
		// sync.Cond.Wait is the one Wait that REQUIRES the lock held —
		// it releases L while parked and reacquires before returning.
		condWait := named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Cond"
		if named != nil && !condWait {
			return fn.Name() + " call"
		}
	}
	if isPkgCall(info, call, "time", "Sleep") {
		return "time.Sleep"
	}
	return ""
}

// isChanExpr reports whether expr has channel type.
func isChanExpr(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// exprString renders an expression compactly for diagnostics and
// held-set keys.
func exprString(fset *token.FileSet, expr ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, expr); err != nil {
		return "?"
	}
	return buf.String()
}
